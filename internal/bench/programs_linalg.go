package bench

import (
	"fmt"
	"math/rand"

	"repro/internal/exec"
)

// --- 7. matmul: dense matrix multiply, one row per work item (PolyBench gemm) ---

var matmulProg = register(&Program{
	Name:  "matmul",
	Suite: "polybench",
	Source: `
kernel void matmul(global const float* a, global const float* b, global float* c, int n) {
	int j = get_global_id(0);
	int i = get_global_id(1);
	if (j < n && i < n) {
		float acc = 0.0;
		for (int k = 0; k < n; k++) {
			acc += a[i * n + k] * b[k * n + j];
		}
		c[i * n + j] = acc;
	}
}`,
	Kernel:    "matmul",
	LocalSize: 16,
	Sizes: []Size{
		{"S0", 32}, {"S1", 48}, {"S2", 64}, {"S3", 96}, {"S4", 128}, {"S5", 192},
	},
	DefaultSize: 4,
	setup: func(n int, rng *rand.Rand) *Instance {
		a, b, c := exec.NewFloatBuffer(n*n), exec.NewFloatBuffer(n*n), exec.NewFloatBuffer(n*n)
		fillUniform(a, rng, -1, 1)
		fillUniform(b, rng, -1, 1)
		return &Instance{
			Args: []exec.Arg{exec.BufArg(a), exec.BufArg(b), exec.BufArg(c), exec.IntArg(n)},
			ND:   exec.ND2(n, n),
		}
	},
	verify: func(inst *Instance, n int) error {
		a, b, c := inst.Args[0].Buf, inst.Args[1].Buf, inst.Args[2].Buf
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				var acc float64
				for k := 0; k < n; k++ {
					acc += float64(a.F[i*n+k]) * float64(b.F[k*n+j])
				}
				if !approxEq(c.F[i*n+j], float32(acc), 1e-3) {
					return fmt.Errorf("c[%d,%d] = %g, want %g", i, j, c.F[i*n+j], acc)
				}
			}
		}
		return nil
	},
})

// --- 8. matvec: dense matrix-vector product, memory bound ---

var matvecProg = register(&Program{
	Name:  "matvec",
	Suite: "polybench",
	Source: `
kernel void matvec(global const float* a, global const float* x, global float* y, int n) {
	int i = get_global_id(0);
	if (i < n) {
		float acc = 0.0;
		for (int j = 0; j < n; j++) {
			acc += a[i * n + j] * x[j];
		}
		y[i] = acc;
	}
}`,
	Kernel:    "matvec",
	LocalSize: 64,
	Sizes: []Size{
		{"S0", 128}, {"S1", 256}, {"S2", 512}, {"S3", 1024}, {"S4", 2048}, {"S5", 4096},
	},
	DefaultSize: 4,
	setup: func(n int, rng *rand.Rand) *Instance {
		a, x, y := exec.NewFloatBuffer(n*n), exec.NewFloatBuffer(n), exec.NewFloatBuffer(n)
		fillUniform(a, rng, -1, 1)
		fillUniform(x, rng, -1, 1)
		return &Instance{
			Args: []exec.Arg{exec.BufArg(a), exec.BufArg(x), exec.BufArg(y), exec.IntArg(n)},
			ND:   exec.ND1(n),
		}
	},
	verify: func(inst *Instance, n int) error {
		a, x, y := inst.Args[0].Buf, inst.Args[1].Buf, inst.Args[2].Buf
		for i := 0; i < n; i++ {
			var acc float64
			for j := 0; j < n; j++ {
				acc += float64(a.F[i*n+j]) * float64(x.F[j])
			}
			if !approxEq(y.F[i], float32(acc), 1e-3) {
				return fmt.Errorf("y[%d] = %g, want %g", i, y.F[i], acc)
			}
		}
		return nil
	},
})

// --- 9. transpose: strided global writes (vendor sample) ---

var transposeProg = register(&Program{
	Name:  "transpose",
	Suite: "vendor",
	Source: `
kernel void transpose(global const float* in, global float* out, int w, int h) {
	int x = get_global_id(0);
	int y = get_global_id(1);
	if (x < w && y < h) {
		out[x * h + y] = in[y * w + x];
	}
}`,
	Kernel: "transpose",
	Sizes: []Size{
		{"S0", 64}, {"S1", 128}, {"S2", 256}, {"S3", 384}, {"S4", 512}, {"S5", 1024},
	},
	DefaultSize: 4,
	setup: func(n int, rng *rand.Rand) *Instance {
		in, out := exec.NewFloatBuffer(n*n), exec.NewFloatBuffer(n*n)
		fillUniform(in, rng, -1, 1)
		return &Instance{
			Args: []exec.Arg{exec.BufArg(in), exec.BufArg(out), exec.IntArg(n), exec.IntArg(n)},
			ND:   exec.ND2(n, n),
		}
	},
	verify: func(inst *Instance, n int) error {
		in, out := inst.Args[0].Buf, inst.Args[1].Buf
		for y := 0; y < n; y++ {
			for x := 0; x < n; x++ {
				if out.F[x*n+y] != in.F[y*n+x] {
					return fmt.Errorf("out[%d,%d] = %g, want %g", x, y, out.F[x*n+y], in.F[y*n+x])
				}
			}
		}
		return nil
	},
})

// --- 10. atax: mixed row/column matrix traversal (PolyBench atax/gemver) ---

var ataxProg = register(&Program{
	Name:  "atax",
	Suite: "polybench",
	Source: `
kernel void atax(global const float* a, global const float* x, global const float* y,
                 global float* z, int n) {
	int i = get_global_id(0);
	if (i < n) {
		float s1 = 0.0;
		float s2 = 0.0;
		for (int j = 0; j < n; j++) {
			s1 += a[i * n + j] * x[j];
			s2 += a[j * n + i] * y[j];
		}
		z[i] = s1 + 1.5 * s2;
	}
}`,
	Kernel:    "atax",
	LocalSize: 64,
	Sizes: []Size{
		{"S0", 128}, {"S1", 256}, {"S2", 512}, {"S3", 768}, {"S4", 1024}, {"S5", 2048},
	},
	DefaultSize: 4,
	setup: func(n int, rng *rand.Rand) *Instance {
		a, x, y, z := exec.NewFloatBuffer(n*n), exec.NewFloatBuffer(n), exec.NewFloatBuffer(n), exec.NewFloatBuffer(n)
		fillUniform(a, rng, -1, 1)
		fillUniform(x, rng, -1, 1)
		fillUniform(y, rng, -1, 1)
		return &Instance{
			Args: []exec.Arg{exec.BufArg(a), exec.BufArg(x), exec.BufArg(y), exec.BufArg(z), exec.IntArg(n)},
			ND:   exec.ND1(n),
		}
	},
	verify: func(inst *Instance, n int) error {
		a, x, y, z := inst.Args[0].Buf, inst.Args[1].Buf, inst.Args[2].Buf, inst.Args[3].Buf
		for i := 0; i < n; i++ {
			var s1, s2 float64
			for j := 0; j < n; j++ {
				s1 += float64(a.F[i*n+j]) * float64(x.F[j])
				s2 += float64(a.F[j*n+i]) * float64(y.F[j])
			}
			if !approxEq(z.F[i], float32(s1+1.5*s2), 1e-3) {
				return fmt.Errorf("z[%d] = %g, want %g", i, z.F[i], s1+1.5*s2)
			}
		}
		return nil
	},
})

// --- 11. spmv: CSR sparse matrix-vector product, irregular gather (SHOC) ---

const spmvAvgNNZ = 16

var spmvProg = register(&Program{
	Name:  "spmv",
	Suite: "shoc",
	Source: `
kernel void spmv(global const int* rowptr, global const int* col, global const float* val,
                 global const float* x, global float* y, int rows) {
	int i = get_global_id(0);
	if (i < rows) {
		float acc = 0.0;
		int end = rowptr[i + 1];
		for (int j = rowptr[i]; j < end; j++) {
			acc += val[j] * x[col[j]];
		}
		y[i] = acc;
	}
}`,
	Kernel:      "spmv",
	Sizes:       geomSizes(sizeLabels, 2048),
	DefaultSize: 4,
	setup: func(n int, rng *rand.Rand) *Instance {
		// Irregular row lengths around the average for divergence.
		rowptr := exec.NewIntBuffer(n + 1)
		lens := make([]int, n)
		total := 0
		for i := range lens {
			lens[i] = spmvAvgNNZ/2 + rng.Intn(spmvAvgNNZ)
			total += lens[i]
		}
		col := exec.NewIntBuffer(total)
		val := exec.NewFloatBuffer(total)
		pos := 0
		for i := 0; i < n; i++ {
			rowptr.I[i] = int32(pos)
			for j := 0; j < lens[i]; j++ {
				col.I[pos] = int32(rng.Intn(n))
				val.F[pos] = float32(rng.Float64()*2 - 1)
				pos++
			}
		}
		rowptr.I[n] = int32(pos)
		x := exec.NewFloatBuffer(n)
		fillUniform(x, rng, -1, 1)
		y := exec.NewFloatBuffer(n)
		return &Instance{
			Args: []exec.Arg{exec.BufArg(rowptr), exec.BufArg(col), exec.BufArg(val),
				exec.BufArg(x), exec.BufArg(y), exec.IntArg(n)},
			ND: exec.ND1(n),
		}
	},
	verify: func(inst *Instance, n int) error {
		rowptr, col, val := inst.Args[0].Buf, inst.Args[1].Buf, inst.Args[2].Buf
		x, y := inst.Args[3].Buf, inst.Args[4].Buf
		for i := 0; i < n; i++ {
			var acc float64
			for j := rowptr.I[i]; j < rowptr.I[i+1]; j++ {
				acc += float64(val.F[j]) * float64(x.F[col.I[j]])
			}
			if !approxEq(y.F[i], float32(acc), 1e-3) {
				return fmt.Errorf("y[%d] = %g, want %g", i, y.F[i], acc)
			}
		}
		return nil
	},
})
