package bench

import (
	"testing"

	"repro/internal/device"
	"repro/internal/partition"
	"repro/internal/runtime"
)

func TestSuiteHas23Programs(t *testing.T) {
	if got := len(All()); got != 23 {
		t.Fatalf("suite has %d programs, want 23", got)
	}
	seen := map[string]bool{}
	for _, p := range All() {
		if seen[p.Name] {
			t.Errorf("duplicate program %q", p.Name)
		}
		seen[p.Name] = true
		if len(p.Sizes) != 6 {
			t.Errorf("%s has %d sizes, want 6", p.Name, len(p.Sizes))
		}
		if p.DefaultSize < 0 || p.DefaultSize >= len(p.Sizes) {
			t.Errorf("%s default size %d out of range", p.Name, p.DefaultSize)
		}
		for i := 1; i < len(p.Sizes); i++ {
			if p.Sizes[i].N <= p.Sizes[i-1].N {
				t.Errorf("%s sizes not ascending at %d", p.Name, i)
			}
		}
	}
}

func TestSuiteCoversOriginSuites(t *testing.T) {
	suites := map[string]int{}
	for _, p := range All() {
		suites[p.Suite]++
	}
	for _, s := range []string{"vendor", "rodinia", "shoc", "polybench"} {
		if suites[s] == 0 {
			t.Errorf("no programs from suite %q", s)
		}
	}
}

// TestAllProgramsCompileAndAnalyze exercises the full front-end on every
// benchmark kernel.
func TestAllProgramsCompileAndAnalyze(t *testing.T) {
	for _, p := range All() {
		st, err := p.Static()
		if err != nil {
			t.Errorf("%s: %v", p.Name, err)
			continue
		}
		if st.GlobalLoads+st.GlobalStores == 0 {
			t.Errorf("%s: kernel touches no global memory", p.Name)
		}
	}
}

// TestAllProgramsVerifySingleDevice runs every program at its smallest size
// on the CPU-only partition and checks outputs against the Go reference.
func TestAllProgramsVerifySingleDevice(t *testing.T) {
	rt := runtime.New(device.MC2())
	for _, p := range All() {
		p := p
		t.Run(p.Name, func(t *testing.T) {
			l, inst, err := p.Build(0)
			if err != nil {
				t.Fatal(err)
			}
			if _, err := rt.Execute(l, rt.CPUOnly()); err != nil {
				t.Fatal(err)
			}
			if err := p.Verify(inst, 0); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestAllProgramsVerifyPartitioned repeats verification under a three-way
// split: partitioned execution must be semantically identical.
func TestAllProgramsVerifyPartitioned(t *testing.T) {
	rt := runtime.New(device.MC1())
	part := partition.Partition{Shares: []int{4, 3, 3}}
	for _, p := range All() {
		p := p
		t.Run(p.Name, func(t *testing.T) {
			l, inst, err := p.Build(1)
			if err != nil {
				t.Fatal(err)
			}
			if _, err := rt.Execute(l, part); err != nil {
				t.Fatal(err)
			}
			if err := p.Verify(inst, 1); err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestBuildDeterministic(t *testing.T) {
	p, err := Get("vecadd")
	if err != nil {
		t.Fatal(err)
	}
	_, i1, err := p.Build(2)
	if err != nil {
		t.Fatal(err)
	}
	_, i2, err := p.Build(2)
	if err != nil {
		t.Fatal(err)
	}
	a1, a2 := i1.Args[0].Buf, i2.Args[0].Buf
	for i := range a1.F {
		if a1.F[i] != a2.F[i] {
			t.Fatal("Build is not deterministic")
		}
	}
}

func TestGetUnknown(t *testing.T) {
	if _, err := Get("nope"); err == nil {
		t.Error("Get(nope) should fail")
	}
}

func TestBuildSizeRange(t *testing.T) {
	p, err := Get("matmul")
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := p.Build(99); err == nil {
		t.Error("out-of-range size accepted")
	}
}

func TestIterativeProgramsMarked(t *testing.T) {
	iterative := map[string]bool{
		"hotspot": true, "srad": true, "pathfinder": true,
		"kmeans": true, "bfs": true, "bitonicsort": true,
	}
	for _, p := range All() {
		if iterative[p.Name] && p.Iterations <= 1 {
			t.Errorf("%s should be iterative", p.Name)
		}
		if !iterative[p.Name] && p.Iterations > 1 {
			t.Errorf("%s unexpectedly iterative", p.Name)
		}
	}
}

// TestSuiteDiversity checks that the suite spans the feature axes the
// partitioning model needs to discriminate on.
func TestSuiteDiversity(t *testing.T) {
	var withBarrier, withIndirect, withTrans, withBranchDivergence int
	for _, p := range All() {
		st, err := p.Static()
		if err != nil {
			t.Fatal(err)
		}
		if st.Barriers > 0 {
			withBarrier++
		}
		if st.TranscendentalOps > 0 {
			withTrans++
		}
		var indirect int
		for pat, n := range st.Accesses {
			if pat.String() == "indirect" {
				indirect += n
			}
		}
		if indirect > 0 {
			withIndirect++
		}
		if st.Branches > 2 {
			withBranchDivergence++
		}
	}
	if withBarrier < 3 {
		t.Errorf("only %d barrier programs, want >= 3", withBarrier)
	}
	if withIndirect < 3 {
		t.Errorf("only %d indirect-access programs, want >= 3", withIndirect)
	}
	if withTrans < 3 {
		t.Errorf("only %d transcendental programs, want >= 3", withTrans)
	}
	if withBranchDivergence < 5 {
		t.Errorf("only %d branchy programs, want >= 5", withBranchDivergence)
	}
}
