package bench

import (
	"fmt"
	"math/rand"

	"repro/internal/exec"
	"repro/internal/inspire"
	"repro/internal/minicl"
)

// UserProgram wraps an uploaded MiniCL kernel in the same *Program shape
// the 23 built-in benchmarks use, so the engine's registry, profiler,
// predictor and executor treat it like any other program.
//
// The setup is synthesized from the kernel's signature: global float
// buffers get deterministic uniform data, global int buffers small
// non-negative ints, local buffers one work-group's worth of storage,
// int scalars the problem size n, and float scalars a fixed 0.5. That
// convention covers the dominant kernel shape (buffers indexed by
// global id, an `int n` bound) without asking uploaders for a host
// program. The verifier is vacuous — there is no Go reference for
// arbitrary uploaded code; correctness enforcement for user kernels is
// the resource-budget layer, not output checking.
func UserProgram(name, suite, source, kernel string, fn *inspire.Function, baseN, numSizes int) (*Program, error) {
	if baseN <= 0 {
		baseN = 1024
	}
	if baseN%exec.DefaultLocal0 != 0 {
		return nil, fmt.Errorf("bench: base size %d must be a multiple of the work-group size %d", baseN, exec.DefaultLocal0)
	}
	if numSizes <= 0 {
		numSizes = 4
	}
	if numSizes > len(sizeLabels) {
		numSizes = len(sizeLabels)
	}

	// Capture the parameter shapes now so the setup closure does not
	// retain the IR (the engine recompiles from source after eviction).
	type pShape struct {
		local    bool
		ptr      bool
		float    bool
		ptrFloat bool
	}
	shapes := make([]pShape, len(fn.Params))
	for i, p := range fn.Params {
		shapes[i] = pShape{
			local: p.Type.Ptr && p.Type.Space == minicl.Local,
			ptr:   p.Type.Ptr,
			float: p.Type.IsFloat(),
		}
		if p.Type.Ptr {
			shapes[i].ptrFloat = p.Type.Elem().IsFloat()
		}
	}

	return &Program{
		Name:   name,
		Suite:  suite,
		Source: source,
		Kernel: kernel,
		Sizes:  geomSizes(sizeLabels[:numSizes], baseN),
		setup: func(n int, rng *rand.Rand) *Instance {
			args := make([]exec.Arg, len(shapes))
			for i, s := range shapes {
				switch {
				case s.local:
					args[i] = exec.LocalArg(exec.DefaultLocal0)
				case s.ptr && s.ptrFloat:
					b := exec.NewFloatBuffer(n)
					fillUniform(b, rng, 0, 1)
					args[i] = exec.BufArg(b)
				case s.ptr:
					b := exec.NewIntBuffer(n)
					for j := range b.I {
						b.I[j] = int32(rng.Intn(n))
					}
					args[i] = exec.BufArg(b)
				case s.float:
					args[i] = exec.FloatArg(0.5)
				default:
					args[i] = exec.IntArg(n)
				}
			}
			return &Instance{Args: args, ND: exec.ND1(n)}
		},
		verify: func(inst *Instance, n int) error { return nil },
	}, nil
}
