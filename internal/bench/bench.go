// Package bench defines the 23-program benchmark suite of the paper's
// evaluation (Section 3: "a selection of 23 programs drawn from OpenCL
// vendors' example codes, applications from our department or partner
// universities, and benchmark suites" — Rodinia, SHOC, PolyBench/InPar).
//
// Each program is a MiniCL kernel with a host-side setup that builds its
// buffers for a family of problem sizes, plus a Go reference
// implementation used to verify partitioned executions. The suite spans
// the axes that move the optimal partitioning: arithmetic intensity
// (streaming vs O(n^2)/O(n^3) compute), memory access patterns (coalesced,
// strided, indirect), control flow (branchy, divergent), work-group
// cooperation (barriers, local memory) and launch structure (single-shot
// vs iterative).
package bench

import (
	"fmt"
	"math"
	"math/rand"
	"sync"

	"repro/internal/backend"
	"repro/internal/exec"
	"repro/internal/inspire"
	"repro/internal/runtime"
)

// Size is one problem size of a program. N is the primary scale parameter
// (elements, matrix side, rows...); the program's setup derives everything
// else from it.
type Size struct {
	Label string
	N     int
}

// Instance is one runnable configuration of a program: arguments bound to
// freshly initialized buffers plus the launch geometry. Extra holds
// verification snapshots (e.g. pre-execution copies of in-place buffers).
type Instance struct {
	Args  []exec.Arg
	ND    exec.NDRange
	Extra map[string]*exec.Buffer
}

// Program is one benchmark of the suite.
type Program struct {
	Name   string
	Suite  string // origin style: vendor, rodinia, shoc, polybench
	Source string // MiniCL source
	Kernel string // kernel function name
	// Iterations is how many times the application launches the kernel
	// per run (iterative solvers); buffers stay resident between launches.
	Iterations int
	// LocalSize overrides the dim-0 work-group size (0 = default).
	LocalSize int
	// Sizes is the problem size family, ascending. DefaultSize indexes
	// the size used for the Figure 1 experiment.
	Sizes       []Size
	DefaultSize int

	setup  func(n int, rng *rand.Rand) *Instance
	verify func(inst *Instance, n int) error

	mu       sync.Mutex // guards lazy compilation
	unit     *inspire.Unit
	compiled *exec.Compiled
	plan     *backend.Plan
}

// compile lazily compiles the program's kernel and plan. It is safe to
// call from concurrent sweep workers; the first caller compiles, the rest
// wait and reuse the result.
func (p *Program) compile() error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.compiled != nil {
		return nil
	}
	u, err := inspire.LowerSource(p.Name, p.Source)
	if err != nil {
		return fmt.Errorf("bench %s: %w", p.Name, err)
	}
	inspire.Optimize(u)
	k := u.Kernel(p.Kernel)
	if k == nil {
		return fmt.Errorf("bench %s: kernel %q not found", p.Name, p.Kernel)
	}
	comp, err := exec.Compile(k)
	if err != nil {
		return fmt.Errorf("bench %s: %w", p.Name, err)
	}
	plan, err := backend.Analyze(k)
	if err != nil {
		return fmt.Errorf("bench %s: %w", p.Name, err)
	}
	p.unit, p.compiled, p.plan = u, comp, plan
	return nil
}

// Static returns the kernel's static analysis counts.
func (p *Program) Static() (*inspire.StaticCounts, error) {
	if err := p.compile(); err != nil {
		return nil, err
	}
	return inspire.Analyze(p.unit.Kernel(p.Kernel)), nil
}

// Instance builds the deterministic input instance (arguments and launch
// geometry) for size index szIdx without compiling the kernel. Callers
// that bring their own compiled program (the deployment engine's
// registry) combine it with the instance to form a launch.
func (p *Program) Instance(szIdx int) (*Instance, error) {
	if szIdx < 0 || szIdx >= len(p.Sizes) {
		return nil, fmt.Errorf("bench %s: size index %d out of range", p.Name, szIdx)
	}
	n := p.Sizes[szIdx].N
	rng := rand.New(rand.NewSource(int64(szIdx)*1315423911 + int64(len(p.Name))*2654435761 + 12345))
	inst := p.setup(n, rng)
	if p.LocalSize > 0 {
		inst.ND.Local[0] = p.LocalSize
	}
	return inst, nil
}

// Build creates a launch for size index szIdx with deterministic input
// data, plus the instance for verification.
func (p *Program) Build(szIdx int) (runtime.Launch, *Instance, error) {
	if err := p.compile(); err != nil {
		return runtime.Launch{}, nil, err
	}
	inst, err := p.Instance(szIdx)
	if err != nil {
		return runtime.Launch{}, nil, err
	}
	l := runtime.Launch{
		Kernel:     p.compiled,
		Plan:       p.plan,
		Args:       inst.Args,
		ND:         inst.ND,
		Iterations: p.Iterations,
	}
	return l, inst, nil
}

// Verify checks the instance's outputs against the Go reference for size
// index szIdx. Call after executing the launch.
func (p *Program) Verify(inst *Instance, szIdx int) error {
	if p.verify == nil {
		return fmt.Errorf("bench %s: no verifier", p.Name)
	}
	return p.verify(inst, p.Sizes[szIdx].N)
}

// registry is populated by the program definition files.
var registry []*Program

func register(p *Program) *Program {
	registry = append(registry, p)
	return p
}

// All returns the full suite in registration order.
func All() []*Program { return registry }

// Get returns the program named name.
func Get(name string) (*Program, error) {
	for _, p := range registry {
		if p.Name == name {
			return p, nil
		}
	}
	return nil, fmt.Errorf("bench: unknown program %q", name)
}

// --- shared verification helpers ---

// approxEq compares float32 results with a mixed absolute/relative
// tolerance sized for float32 accumulation error.
func approxEq(got, want float32, tol float64) bool {
	g, w := float64(got), float64(want)
	if math.IsNaN(g) || math.IsNaN(w) {
		return false
	}
	diff := math.Abs(g - w)
	return diff <= tol*(1+math.Abs(w))
}

// checkFloats compares a buffer against expected values.
func checkFloats(name string, got []float32, want []float32, tol float64) error {
	if len(got) != len(want) {
		return fmt.Errorf("%s: length %d vs %d", name, len(got), len(want))
	}
	for i := range got {
		if !approxEq(got[i], want[i], tol) {
			return fmt.Errorf("%s[%d] = %g, want %g", name, i, got[i], want[i])
		}
	}
	return nil
}

// checkInts compares an int buffer against expected values.
func checkInts(name string, got []int32, want []int32) error {
	if len(got) != len(want) {
		return fmt.Errorf("%s: length %d vs %d", name, len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			return fmt.Errorf("%s[%d] = %d, want %d", name, i, got[i], want[i])
		}
	}
	return nil
}

// fillUniform fills a float buffer with deterministic values in [lo, hi).
func fillUniform(b *exec.Buffer, rng *rand.Rand, lo, hi float64) {
	for i := range b.F {
		b.F[i] = float32(lo + rng.Float64()*(hi-lo))
	}
}

// geomSizes builds a size family by repeated doubling from base.
func geomSizes(labels []string, base int) []Size {
	out := make([]Size, len(labels))
	n := base
	for i, l := range labels {
		out[i] = Size{Label: l, N: n}
		n *= 2
	}
	return out
}

// sizeLabels is the canonical S0..S5 labelling.
var sizeLabels = []string{"S0", "S1", "S2", "S3", "S4", "S5"}
