// Package partition defines the discretized task-partitioning space of the
// paper: the dim-0 iteration range of a kernel is split into contiguous
// chunks, one per device, with per-device shares drawn from a grid with a
// 10% step size (Section 2.1: "p is selected from a discretized
// partitioning space with a stepsize of 10%").
package partition

import (
	"fmt"
	"strconv"
	"strings"
	"sync"
)

// DefaultSteps is the number of share units: 10 units of 10% each.
const DefaultSteps = 10

// Partition assigns each device an integer number of share units.
// Shares[i] units out of Steps() go to device i; the units map to
// contiguous dim-0 chunks in device order.
type Partition struct {
	Shares []int
}

// Steps returns the total number of share units of the partition.
func (p Partition) Steps() int {
	s := 0
	for _, v := range p.Shares {
		s += v
	}
	return s
}

// Fraction returns device i's share as a fraction in [0,1].
func (p Partition) Fraction(i int) float64 {
	steps := p.Steps()
	if steps == 0 {
		return 0
	}
	return float64(p.Shares[i]) / float64(steps)
}

// IsSingle reports whether the whole range goes to one device, returning
// its index.
func (p Partition) IsSingle() (int, bool) {
	idx := -1
	for i, v := range p.Shares {
		if v > 0 {
			if idx >= 0 {
				return -1, false
			}
			idx = i
		}
	}
	return idx, idx >= 0
}

// ActiveDevices returns how many devices receive a non-zero share.
func (p Partition) ActiveDevices() int {
	n := 0
	for _, v := range p.Shares {
		if v > 0 {
			n++
		}
	}
	return n
}

// String renders the partition as "50/30/20".
func (p Partition) String() string {
	steps := p.Steps()
	parts := make([]string, len(p.Shares))
	for i, v := range p.Shares {
		pct := 0
		if steps > 0 {
			pct = v * 100 / steps
		}
		parts[i] = strconv.Itoa(pct)
	}
	return strings.Join(parts, "/")
}

// Parse parses a "50/30/20" percentage string into a partition with
// DefaultSteps share units.
func Parse(s string) (Partition, error) {
	fields := strings.Split(s, "/")
	shares := make([]int, len(fields))
	total := 0
	for i, f := range fields {
		v, err := strconv.Atoi(strings.TrimSpace(f))
		if err != nil {
			return Partition{}, fmt.Errorf("partition: bad component %q", f)
		}
		if v < 0 || v > 100 {
			return Partition{}, fmt.Errorf("partition: component %d out of range", v)
		}
		if v%(100/DefaultSteps) != 0 {
			return Partition{}, fmt.Errorf("partition: %d%% not a multiple of the %d%% step", v, 100/DefaultSteps)
		}
		shares[i] = v / (100 / DefaultSteps)
		total += v
	}
	if total != 100 {
		return Partition{}, fmt.Errorf("partition: shares sum to %d%%, want 100%%", total)
	}
	return Partition{Shares: shares}, nil
}

// Single returns the partition giving everything to device idx.
func Single(nDevices, idx int) Partition {
	shares := make([]int, nDevices)
	shares[idx] = DefaultSteps
	return Partition{Shares: shares}
}

// Even returns the most even partition possible on the step grid.
func Even(nDevices int) Partition {
	shares := make([]int, nDevices)
	base := DefaultSteps / nDevices
	rem := DefaultSteps - base*nDevices
	for i := range shares {
		shares[i] = base
		if i < rem {
			shares[i]++
		}
	}
	return Partition{Shares: shares}
}

// Space enumerates every partition of steps share units over nDevices
// devices (all weak compositions), in deterministic lexicographic order.
// With 3 devices and 10 steps this yields 66 candidate partitionings.
func Space(nDevices, steps int) []Partition {
	if nDevices <= 0 || steps <= 0 {
		return nil
	}
	var out []Partition
	shares := make([]int, nDevices)
	var rec func(dev, left int)
	rec = func(dev, left int) {
		if dev == nDevices-1 {
			shares[dev] = left
			out = append(out, Partition{Shares: append([]int(nil), shares...)})
			return
		}
		for v := 0; v <= left; v++ {
			shares[dev] = v
			rec(dev+1, left-v)
		}
	}
	rec(0, steps)
	return out
}

// spaceCache memoizes Space per (devices, steps): the enumeration is
// re-requested for every oracle search and every training cell, and the
// grid never changes within a process.
var spaceCache sync.Map // spaceKey -> []Partition

type spaceKey struct{ devices, steps int }

// SharedSpace returns the memoized canonical enumeration of
// Space(nDevices, steps). The slice and the partitions it holds are shared
// by every caller in the process and must be treated as read-only; callers
// that need to mutate the enumeration should call Space instead.
func SharedSpace(nDevices, steps int) []Partition {
	key := spaceKey{nDevices, steps}
	if v, ok := spaceCache.Load(key); ok {
		return v.([]Partition)
	}
	v, _ := spaceCache.LoadOrStore(key, Space(nDevices, steps))
	return v.([]Partition)
}

// SpaceSize returns the number of partitions Space(nDevices, steps) yields
// (the number of weak compositions: C(steps+nDevices-1, nDevices-1)).
func SpaceSize(nDevices, steps int) int {
	n, k := steps+nDevices-1, nDevices-1
	res := 1
	for i := 1; i <= k; i++ {
		res = res * (n - k + i) / i
	}
	return res
}

// Chunks maps the partition onto dim-0 range [0, global0), aligning chunk
// boundaries down to multiples of align (the work-group size). Devices
// with zero shares get empty chunks. The chunks exactly tile the range:
// chunk[i] = [start_i, end_i) with end_i == start_{i+1}. Rounding may give
// the last active device slightly more or less than its nominal share.
func (p Partition) Chunks(global0, align int) [][2]int {
	return p.ChunksInto(nil, global0, align)
}

// ChunksInto is Chunks with caller-supplied storage: dst is reused when its
// capacity suffices, so hot pricing loops (the oracle search) compute chunk
// layouts without allocating per candidate.
func (p Partition) ChunksInto(dst [][2]int, global0, align int) [][2]int {
	if align <= 0 {
		align = 1
	}
	steps := p.Steps()
	var out [][2]int
	if cap(dst) >= len(p.Shares) {
		out = dst[:len(p.Shares)]
	} else {
		out = make([][2]int, len(p.Shares))
	}
	if steps == 0 || global0 == 0 {
		clear(out)
		return out
	}
	cum := 0
	prevEnd := 0
	for i, v := range p.Shares {
		cum += v
		end := global0 * cum / steps
		end = end / align * align
		if cum == steps {
			end = global0
		}
		if end < prevEnd {
			end = prevEnd
		}
		out[i] = [2]int{prevEnd, end}
		prevEnd = end
	}
	return out
}
