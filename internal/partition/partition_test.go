package partition

import (
	"testing"
	"testing/quick"
)

func TestSpaceSize(t *testing.T) {
	cases := []struct{ dev, steps, want int }{
		{3, 10, 66}, // the paper's space: 3 devices, 10% steps
		{2, 10, 11},
		{1, 10, 1},
		{3, 20, 231},
		{4, 10, 286},
	}
	for _, c := range cases {
		got := Space(c.dev, c.steps)
		if len(got) != c.want {
			t.Errorf("len(Space(%d,%d)) = %d, want %d", c.dev, c.steps, len(got), c.want)
		}
		if sz := SpaceSize(c.dev, c.steps); sz != c.want {
			t.Errorf("SpaceSize(%d,%d) = %d, want %d", c.dev, c.steps, sz, c.want)
		}
	}
}

func TestSpaceAllSumToSteps(t *testing.T) {
	for _, p := range Space(3, 10) {
		if p.Steps() != 10 {
			t.Fatalf("partition %v sums to %d", p.Shares, p.Steps())
		}
	}
}

func TestSpaceDeterministicAndUnique(t *testing.T) {
	a, b := Space(3, 10), Space(3, 10)
	seen := map[string]bool{}
	for i := range a {
		if a[i].String() != b[i].String() {
			t.Fatal("Space is not deterministic")
		}
		key := a[i].String()
		if seen[key] {
			t.Fatalf("duplicate partition %s", key)
		}
		seen[key] = true
	}
}

func TestSingleAndEven(t *testing.T) {
	s := Single(3, 1)
	if idx, ok := s.IsSingle(); !ok || idx != 1 {
		t.Errorf("Single(3,1).IsSingle() = %d,%t", idx, ok)
	}
	if s.Fraction(1) != 1.0 || s.Fraction(0) != 0 {
		t.Error("Single fractions wrong")
	}
	e := Even(3)
	if e.Steps() != DefaultSteps {
		t.Errorf("Even steps = %d", e.Steps())
	}
	if e.Shares[0] != 4 || e.Shares[1] != 3 || e.Shares[2] != 3 {
		t.Errorf("Even(3) = %v, want [4 3 3]", e.Shares)
	}
	if e.ActiveDevices() != 3 {
		t.Errorf("Even(3).ActiveDevices() = %d", e.ActiveDevices())
	}
}

func TestStringAndParseRoundTrip(t *testing.T) {
	for _, p := range Space(3, 10) {
		s := p.String()
		q, err := Parse(s)
		if err != nil {
			t.Fatalf("Parse(%q): %v", s, err)
		}
		for i := range p.Shares {
			if p.Shares[i] != q.Shares[i] {
				t.Fatalf("round trip %q -> %v, want %v", s, q.Shares, p.Shares)
			}
		}
	}
}

func TestParseErrors(t *testing.T) {
	for _, s := range []string{"50/30", "x/50/50", "110/0/-10", "55/25/20", "100/10/0"} {
		if _, err := Parse(s); err == nil {
			t.Errorf("Parse(%q) succeeded, want error", s)
		}
	}
}

func TestChunksTileExactly(t *testing.T) {
	f := func(s0raw, s1raw uint8, g16 uint16, alignPow uint8) bool {
		s0 := int(s0raw) % 11
		s1 := int(s1raw) % (11 - s0)
		p := Partition{Shares: []int{s0, s1, 10 - s0 - s1}}
		align := 1 << (alignPow % 7) // 1..64
		global := (int(g16)%2048 + 1) * align
		chunks := p.Chunks(global, align)
		prev := 0
		for i, ch := range chunks {
			if ch[0] != prev {
				t.Logf("gap before chunk %d: %v", i, chunks)
				return false
			}
			if ch[1] < ch[0] {
				return false
			}
			if i < len(chunks)-1 && ch[1]%align != 0 {
				return false
			}
			prev = ch[1]
		}
		return prev == global
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestChunksZeroShareEmpty(t *testing.T) {
	p := Partition{Shares: []int{10, 0, 0}}
	chunks := p.Chunks(1000, 64)
	if chunks[0] != [2]int{0, 1000} {
		t.Errorf("chunk 0 = %v", chunks[0])
	}
	for i := 1; i < 3; i++ {
		if chunks[i][0] != chunks[i][1] {
			t.Errorf("chunk %d not empty: %v", i, chunks[i])
		}
	}
}

func TestChunksShareProportions(t *testing.T) {
	p := Partition{Shares: []int{5, 3, 2}}
	chunks := p.Chunks(1000, 1)
	if chunks[0] != [2]int{0, 500} || chunks[1] != [2]int{500, 800} || chunks[2] != [2]int{800, 1000} {
		t.Errorf("chunks = %v", chunks)
	}
}

func TestChunksAlignment(t *testing.T) {
	p := Partition{Shares: []int{5, 5}}
	chunks := p.Chunks(1000, 64)
	// 500 rounds down to 448 (7*64).
	if chunks[0][1]%64 != 0 {
		t.Errorf("boundary %d not aligned", chunks[0][1])
	}
	if chunks[1][1] != 1000 {
		t.Errorf("last chunk must end at global0, got %d", chunks[1][1])
	}
}

func TestFractionZeroSteps(t *testing.T) {
	p := Partition{Shares: []int{0, 0}}
	if p.Fraction(0) != 0 {
		t.Error("Fraction on zero partition should be 0")
	}
	if _, ok := p.IsSingle(); ok {
		t.Error("zero partition is not single")
	}
}

func TestSharedSpaceMatchesSpace(t *testing.T) {
	for _, cfg := range []struct{ dev, steps int }{{2, 10}, {3, 10}, {3, 20}} {
		want := Space(cfg.dev, cfg.steps)
		got := SharedSpace(cfg.dev, cfg.steps)
		if len(got) != len(want) {
			t.Fatalf("(%d,%d): %d partitions, want %d", cfg.dev, cfg.steps, len(got), len(want))
		}
		for i := range want {
			if got[i].String() != want[i].String() {
				t.Fatalf("(%d,%d)[%d]: %s != %s", cfg.dev, cfg.steps, i, got[i], want[i])
			}
		}
		// The memo must hand out one canonical slice.
		if again := SharedSpace(cfg.dev, cfg.steps); &again[0] != &got[0] {
			t.Errorf("(%d,%d): SharedSpace not memoized", cfg.dev, cfg.steps)
		}
	}
}

func TestChunksIntoReuse(t *testing.T) {
	p := Partition{Shares: []int{5, 3, 2}}
	scratch := make([][2]int, 0, 3)
	got := p.ChunksInto(scratch, 1000, 64)
	want := p.Chunks(1000, 64)
	if len(got) != len(want) {
		t.Fatalf("len %d != %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("chunk %d: %v != %v", i, got[i], want[i])
		}
	}
	if &got[0] != &scratch[:1][0] {
		t.Error("ChunksInto did not reuse the scratch backing array")
	}
	// A dirty reused scratch must be fully overwritten, including the
	// zero-share early-out path.
	dirty := [][2]int{{7, 8}, {9, 10}}
	empty := Partition{Shares: []int{0, 0}}.ChunksInto(dirty, 100, 1)
	for i, ch := range empty {
		if ch != [2]int{} {
			t.Errorf("empty partition chunk %d = %v, want zero", i, ch)
		}
	}
}
