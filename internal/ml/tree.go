package ml

import (
	"fmt"
	"math/rand"
	"sort"
)

// Tree is a CART-style decision tree classifier with Gini impurity
// splitting. MaxFeatures < dim enables per-split feature subsampling
// (used by the random forest); zero means "use all features".
type Tree struct {
	MaxDepth    int
	MinSamples  int
	MaxFeatures int
	Seed        int64

	root *treeNode
	n    int
}

// NewTree builds a decision tree with sensible defaults.
func NewTree() *Tree {
	return &Tree{MaxDepth: 12, MinSamples: 2}
}

// Name implements Classifier.
func (t *Tree) Name() string { return "dtree" }

type treeNode struct {
	feature int
	thresh  float64
	left    *treeNode
	right   *treeNode
	label   int // leaf prediction
	leaf    bool
}

// Fit implements Classifier.
func (t *Tree) Fit(d *Dataset) error {
	if err := d.Validate(); err != nil {
		return err
	}
	if d.Len() == 0 {
		return fmt.Errorf("ml: empty training set")
	}
	t.n = d.NumClasses()
	idx := make([]int, d.Len())
	for i := range idx {
		idx[i] = i
	}
	rng := rand.New(rand.NewSource(t.Seed))
	t.root = t.build(d, idx, 0, rng)
	return nil
}

func (t *Tree) build(d *Dataset, idx []int, depth int, rng *rand.Rand) *treeNode {
	labels := make([]int, len(idx))
	for i, s := range idx {
		labels[i] = d.Y[s]
	}
	maj := majority(labels, t.n)
	if depth >= t.MaxDepth || len(idx) < t.MinSamples || pure(labels) {
		return &treeNode{leaf: true, label: maj}
	}
	feat, thresh, ok := t.bestSplit(d, idx, rng)
	if !ok {
		return &treeNode{leaf: true, label: maj}
	}
	var li, ri []int
	for _, s := range idx {
		if d.X[s][feat] <= thresh {
			li = append(li, s)
		} else {
			ri = append(ri, s)
		}
	}
	if len(li) == 0 || len(ri) == 0 {
		return &treeNode{leaf: true, label: maj}
	}
	return &treeNode{
		feature: feat,
		thresh:  thresh,
		left:    t.build(d, li, depth+1, rng),
		right:   t.build(d, ri, depth+1, rng),
	}
}

// bestSplit scans candidate features for the Gini-optimal threshold.
func (t *Tree) bestSplit(d *Dataset, idx []int, rng *rand.Rand) (int, float64, bool) {
	dim := d.Dim()
	feats := make([]int, dim)
	for i := range feats {
		feats[i] = i
	}
	if t.MaxFeatures > 0 && t.MaxFeatures < dim {
		rng.Shuffle(dim, func(i, j int) { feats[i], feats[j] = feats[j], feats[i] })
		feats = feats[:t.MaxFeatures]
		sort.Ints(feats) // deterministic scan order given the shuffle
	}

	bestGini := 2.0
	bestFeat, bestThresh := -1, 0.0
	vals := make([]float64, 0, len(idx))
	// Class histograms for incremental Gini: left grows, right shrinks.
	for _, f := range feats {
		vals = vals[:0]
		for _, s := range idx {
			vals = append(vals, d.X[s][f])
		}
		order := make([]int, len(idx))
		for i := range order {
			order[i] = i
		}
		sort.Slice(order, func(a, b int) bool { return vals[order[a]] < vals[order[b]] })

		total := len(idx)
		leftCount := make([]int, t.n)
		rightCount := make([]int, t.n)
		for _, s := range idx {
			rightCount[d.Y[s]]++
		}
		nLeft := 0
		for pos := 0; pos < total-1; pos++ {
			s := idx[order[pos]]
			leftCount[d.Y[s]]++
			rightCount[d.Y[s]]--
			nLeft++
			v, vNext := vals[order[pos]], vals[order[pos+1]]
			if v == vNext {
				continue // cannot split between equal values
			}
			g := weightedGini(leftCount, nLeft, rightCount, total-nLeft)
			if g < bestGini {
				bestGini = g
				bestFeat = f
				bestThresh = (v + vNext) / 2
			}
		}
	}
	return bestFeat, bestThresh, bestFeat >= 0
}

func weightedGini(lc []int, nl int, rc []int, nr int) float64 {
	return (float64(nl)*gini(lc, nl) + float64(nr)*gini(rc, nr)) / float64(nl+nr)
}

func gini(counts []int, n int) float64 {
	if n == 0 {
		return 0
	}
	g := 1.0
	for _, c := range counts {
		p := float64(c) / float64(n)
		g -= p * p
	}
	return g
}

func pure(labels []int) bool {
	for _, y := range labels[1:] {
		if y != labels[0] {
			return false
		}
	}
	return true
}

// PredictScratch implements ScratchPredictor. Tree traversal never
// allocated to begin with; the scratch is unused.
func (t *Tree) PredictScratch(x []float64, _ *Scratch) int { return t.Predict(x) }

// Predict implements Classifier.
func (t *Tree) Predict(x []float64) int {
	n := t.root
	for !n.leaf {
		if x[n.feature] <= n.thresh {
			n = n.left
		} else {
			n = n.right
		}
	}
	return n.label
}

// Depth returns the maximum depth of the fitted tree (diagnostics).
func (t *Tree) Depth() int { return nodeDepth(t.root) }

func nodeDepth(n *treeNode) int {
	if n == nil || n.leaf {
		return 0
	}
	l, r := nodeDepth(n.left), nodeDepth(n.right)
	if l > r {
		return l + 1
	}
	return r + 1
}
