package ml

import (
	"bytes"
	"flag"
	"math/rand"
	"os"
	"path/filepath"
	"testing"
)

var updateGolden = flag.Bool("update", false, "rewrite golden artifacts")

// serializableModels enumerates every model family with a constructor
// sized for the synthetic problem. Each entry must survive
// Fit→Save→Load→Predict with byte-identical predictions.
func serializableModels() map[string]NewModel {
	return map[string]NewModel{
		"knn":      func() Classifier { return NewKNN(5) },
		"tree":     func() Classifier { return NewTree() },
		"forest":   func() Classifier { return NewForest(10, 7) },
		"logreg":   func() Classifier { return NewLogReg(7) },
		"mlp":      func() Classifier { return NewMLP(8, 7) },
		"twostage": newStageModel,
		"pca-pipeline": func() Classifier {
			return NewPCAPipeline(3, 7, func() Classifier { return NewKNN(5) })
		},
	}
}

// probePoints builds deterministic query vectors spanning the feature
// space, including points far outside the training distribution.
func probePoints(dim int, n int, seed int64) [][]float64 {
	rng := rand.New(rand.NewSource(seed))
	out := make([][]float64, n)
	for i := range out {
		x := make([]float64, dim)
		for j := range x {
			x[j] = rng.NormFloat64() * 3
		}
		out[i] = x
	}
	return out
}

// TestModelRoundTripAllFamilies is the serialization property test: for
// every model family, a fitted model's predictions are identical before
// and after Save/Load, and re-serializing the loaded model reproduces the
// exact bytes (no format drift within a process).
func TestModelRoundTripAllFamilies(t *testing.T) {
	for name, mk := range serializableModels() {
		t.Run(name, func(t *testing.T) {
			d := synthDataset(160, 11)
			if name == "twostage" {
				d = stageDataset(160, 11)
			}
			sc := FitScaler(d)
			sd := sc.TransformDataset(d)
			model := mk()
			if err := model.Fit(sd); err != nil {
				t.Fatal(err)
			}
			data, err := MarshalModel(model)
			if err != nil {
				t.Fatalf("marshal: %v", err)
			}
			loaded, err := UnmarshalModel(data)
			if err != nil {
				t.Fatalf("unmarshal: %v", err)
			}
			if loaded.Name() != model.Name() {
				t.Errorf("name drift: %q -> %q", model.Name(), loaded.Name())
			}
			for i, x := range probePoints(d.Dim(), 200, 23) {
				sx := sc.Transform(x)
				want, got := model.Predict(sx), loaded.Predict(sx)
				if want != got {
					t.Fatalf("probe %d: fresh=%d loaded=%d", i, want, got)
				}
			}
			again, err := MarshalModel(loaded)
			if err != nil {
				t.Fatalf("re-marshal: %v", err)
			}
			if !bytes.Equal(data, again) {
				t.Fatalf("serialization not stable under round trip:\n%s\nvs\n%s", data, again)
			}
		})
	}
}

// TestLoadedModelRefit checks that non-composite loaded models can be
// refitted (the train-on-the-fly fallback path reuses loaded hyperparams).
func TestLoadedModelRefit(t *testing.T) {
	for _, name := range []string{"knn", "tree", "forest", "logreg", "mlp"} {
		mk := serializableModels()[name]
		d := synthDataset(80, 3)
		model := mk()
		if err := model.Fit(d); err != nil {
			t.Fatal(err)
		}
		data, err := MarshalModel(model)
		if err != nil {
			t.Fatal(err)
		}
		loaded, err := UnmarshalModel(data)
		if err != nil {
			t.Fatal(err)
		}
		if err := loaded.Fit(d); err != nil {
			t.Errorf("%s: refit after load: %v", name, err)
		}
	}
}

func TestScalerRoundTrip(t *testing.T) {
	d := synthDataset(60, 5)
	sc := FitScaler(d)
	a := &Artifact{Version: ArtifactVersion, ModelName: "knn5", Scaler: sc, Model: NewKNN(3)}
	if err := a.Model.Fit(sc.TransformDataset(d)); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := EncodeArtifact(&buf, a); err != nil {
		t.Fatal(err)
	}
	b, err := DecodeArtifact(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for j := range sc.Mean {
		if b.Scaler.Mean[j] != sc.Mean[j] || b.Scaler.Std[j] != sc.Std[j] {
			t.Fatalf("scaler drift at feature %d", j)
		}
	}
	for _, x := range probePoints(d.Dim(), 50, 9) {
		ta, tb := sc.Transform(x), b.Scaler.Transform(x)
		for j := range ta {
			if ta[j] != tb[j] {
				t.Fatalf("transform drift at feature %d: %v vs %v", j, ta[j], tb[j])
			}
		}
	}
}

// TestArtifactPredictionsByteIdentical pins the PR's acceptance criterion
// at the ml layer: an artifact loaded from disk produces exactly the
// predictions of the freshly trained model it was saved from, for every
// model family (the deployment default MLP included).
func TestArtifactPredictionsByteIdentical(t *testing.T) {
	dir := t.TempDir()
	for name, mk := range serializableModels() {
		t.Run(name, func(t *testing.T) {
			d := synthDataset(120, 17)
			if name == "twostage" {
				d = stageDataset(120, 17)
			}
			a, err := TrainArtifact(d, mk)
			if err != nil {
				t.Fatal(err)
			}
			a.Platform = "mc2"
			path := filepath.Join(dir, name+".json")
			if err := SaveArtifact(path, a); err != nil {
				t.Fatal(err)
			}
			loaded, err := LoadArtifact(path)
			if err != nil {
				t.Fatal(err)
			}
			if loaded.Platform != "mc2" || loaded.ModelName != a.ModelName {
				t.Fatalf("metadata drift: %+v", loaded)
			}
			for i, x := range probePoints(d.Dim(), 300, 31) {
				if want, got := a.Predict(x), loaded.Predict(x); want != got {
					t.Fatalf("probe %d: fresh artifact=%d loaded artifact=%d", i, want, got)
				}
			}
			// Saving the loaded artifact must reproduce the file exactly.
			path2 := filepath.Join(dir, name+"-again.json")
			if err := SaveArtifact(path2, loaded); err != nil {
				t.Fatal(err)
			}
			b1, _ := os.ReadFile(path)
			b2, _ := os.ReadFile(path2)
			if !bytes.Equal(b1, b2) {
				t.Fatal("artifact bytes not stable under load/save round trip")
			}
		})
	}
}

// goldenArtifact builds the fixed artifact pinned in testdata. It uses
// tree + knn ingredients only (no transcendental math) so the golden
// bytes are stable across architectures.
func goldenArtifact(t *testing.T) *Artifact {
	t.Helper()
	d := synthDataset(48, 42)
	a, err := TrainArtifact(d, func() Classifier { return NewForest(4, 42) })
	if err != nil {
		t.Fatal(err)
	}
	a.Platform = "mc2"
	a.Space = []string{"100/0/0", "0/100/0", "0/0/100"}
	return a
}

// TestGoldenArtifact catches serialization format drift: the checked-in
// artifact must decode, predict the pinned classes, and re-encode to the
// exact checked-in bytes. Run with -update to regenerate after an
// intentional format change (and bump ArtifactVersion).
func TestGoldenArtifact(t *testing.T) {
	path := filepath.Join("testdata", "golden_artifact.json")
	if *updateGolden {
		if err := SaveArtifact(path, goldenArtifact(t)); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (run `go test ./internal/ml -run Golden -update` to create)", err)
	}

	var buf bytes.Buffer
	if err := EncodeArtifact(&buf, goldenArtifact(t)); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("freshly trained golden artifact encodes differently from testdata (format drift?)")
	}

	loaded, err := LoadArtifact(path)
	if err != nil {
		t.Fatal(err)
	}
	fresh := goldenArtifact(t)
	for i, x := range probePoints(4, 100, 77) {
		if want, got := fresh.Predict(x), loaded.Predict(x); want != got {
			t.Fatalf("probe %d: fresh=%d golden=%d", i, want, got)
		}
	}
}

func TestUnmarshalModelErrors(t *testing.T) {
	if _, err := UnmarshalModel([]byte(`{"kind":"nope","spec":{}}`)); err == nil {
		t.Error("unknown kind accepted")
	}
	if _, err := UnmarshalModel([]byte(`{`)); err == nil {
		t.Error("syntax error accepted")
	}
	// A corrupt tree (forward cycle) must be rejected, not crash.
	bad := []byte(`{"kind":"tree","spec":{"classes":2,"nodes":[{"f":0,"t":0,"l":0,"r":-1,"y":0}]}}`)
	if _, err := UnmarshalModel(bad); err == nil {
		t.Error("corrupt tree accepted")
	}
}
