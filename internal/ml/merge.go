package ml

import (
	"fmt"
	"math/rand"
	"sort"
)

// MergeDatasets concatenates two datasets with identical feature schemas
// — the adaptive loop's "seed database + harvested observations"
// composition. Group labels are preserved so leave-one-program-out
// evaluation keeps working on merged data. Soft (cost-sensitive) labels
// survive only when BOTH inputs carry them for every sample; a partial
// distribution target would silently bias models that consume Soft, so a
// mixed merge drops them and every model falls back to the hard labels.
func MergeDatasets(base, extra *Dataset) (*Dataset, error) {
	if base == nil || extra == nil {
		return nil, fmt.Errorf("ml: merge with nil dataset")
	}
	if extra.Len() == 0 {
		return base, nil
	}
	if base.Len() == 0 {
		return extra, nil
	}
	if len(base.Names) != len(extra.Names) {
		return nil, fmt.Errorf("ml: merging %d-feature dataset with %d-feature dataset", len(base.Names), len(extra.Names))
	}
	for i, n := range base.Names {
		if extra.Names[i] != n {
			return nil, fmt.Errorf("ml: feature %d is %q in base, %q in extra", i, n, extra.Names[i])
		}
	}
	out := &Dataset{Names: base.Names}
	out.X = append(append(out.X, base.X...), extra.X...)
	out.Y = append(append(out.Y, base.Y...), extra.Y...)
	if len(base.Groups) == len(base.X) && len(extra.Groups) == len(extra.X) {
		out.Groups = append(append(out.Groups, base.Groups...), extra.Groups...)
	}
	if len(base.Soft) == len(base.X) && len(extra.Soft) == len(extra.X) {
		// Distribution targets must span the same class space.
		if len(base.Soft[0]) == len(extra.Soft[0]) {
			out.Soft = append(append(out.Soft, base.Soft...), extra.Soft...)
		}
	}
	return out, nil
}

// StratifiedHoldout deterministically splits sample indices into a
// training set and a held-out slice of roughly frac of the data,
// stratified by class label so every class that can afford to give up a
// sample is represented in the holdout. This is the no-regression gate's
// evaluation slice: candidate and live model are compared on exactly
// these samples.
//
// Per class: n samples give up round(frac*n) (at least 1 when n >= 2,
// never all n). Singleton classes stay entirely in training — a gate
// cannot learn anything from a class it would then be unable to train
// on. Both returned index lists are sorted ascending; the split is a
// pure function of (labels, frac, seed).
func StratifiedHoldout(d *Dataset, frac float64, seed int64) (train, hold []int) {
	if frac < 0 {
		frac = 0
	}
	if frac > 0.5 {
		frac = 0.5
	}
	byClass := map[int][]int{}
	var classes []int
	for i, y := range d.Y {
		if _, ok := byClass[y]; !ok {
			classes = append(classes, y)
		}
		byClass[y] = append(byClass[y], i)
	}
	sort.Ints(classes)
	for _, c := range classes {
		idx := byClass[c]
		n := len(idx)
		nHold := int(frac*float64(n) + 0.5)
		if n >= 2 && nHold == 0 && frac > 0 {
			nHold = 1
		}
		if nHold >= n {
			nHold = n - 1
		}
		if nHold <= 0 {
			train = append(train, idx...)
			continue
		}
		// A per-class deterministic shuffle decorrelates the holdout from
		// insertion order (the seed DB comes sorted by program).
		rng := rand.New(rand.NewSource(seed + int64(c)*1_000_003))
		shuffled := append([]int{}, idx...)
		rng.Shuffle(len(shuffled), func(i, j int) { shuffled[i], shuffled[j] = shuffled[j], shuffled[i] })
		hold = append(hold, shuffled[:nHold]...)
		train = append(train, shuffled[nHold:]...)
	}
	sort.Ints(train)
	sort.Ints(hold)
	return train, hold
}

// AccuracyOn evaluates the artifact's exact-label accuracy over the given
// sample indices of a raw (unscaled) dataset. This is the gate metric:
// both sides of a no-regression comparison run through it on the same
// held-out slice.
func (a *Artifact) AccuracyOn(d *Dataset, idx []int) float64 {
	if len(idx) == 0 {
		return 0
	}
	hit := 0
	for _, i := range idx {
		if a.Predict(d.X[i]) == d.Y[i] {
			hit++
		}
	}
	return float64(hit) / float64(len(idx))
}
