package ml

import (
	"fmt"
	"math"
	"sort"
)

// KNN is a k-nearest-neighbours classifier with Euclidean distance and
// majority voting. With distance-weighted voting enabled, closer
// neighbours count more (1/(d+eps)).
type KNN struct {
	K        int
	Weighted bool

	x [][]float64
	y []int
	n int
}

// NewKNN builds a kNN model; k defaults to 5 if non-positive.
func NewKNN(k int) *KNN {
	if k <= 0 {
		k = 5
	}
	return &KNN{K: k, Weighted: true}
}

// Name implements Classifier.
func (m *KNN) Name() string { return fmt.Sprintf("knn%d", m.K) }

// Fit memorizes the training set.
func (m *KNN) Fit(d *Dataset) error {
	if err := d.Validate(); err != nil {
		return err
	}
	if d.Len() == 0 {
		return fmt.Errorf("ml: empty training set")
	}
	m.x = d.X
	m.y = d.Y
	m.n = d.NumClasses()
	return nil
}

type neighbour struct {
	dist float64
	y    int
}

// Predict implements Classifier.
func (m *KNN) Predict(x []float64) int {
	s := getScratch()
	y := m.PredictScratch(x, s)
	putScratch(s)
	return y
}

// PredictScratch implements ScratchPredictor. Neighbours are ranked by
// the same (distance, label) total order Predict always used; elements
// equal under it are interchangeable (identical label and weight), so
// the vote totals — and the class — are bit-identical regardless of how
// the sort arranges them.
func (m *KNN) PredictScratch(x []float64, s *Scratch) int {
	k := m.K
	if k > len(m.x) {
		k = len(m.x)
	}
	nb := s.neighbours(len(m.x))
	for i, xi := range m.x {
		nb[i] = neighbour{dist: sqDist(x, xi), y: m.y[i]}
	}
	sort.Sort(&s.nb)
	votes := s.floats(m.n)
	clear(votes)
	for i := 0; i < k; i++ {
		w := 1.0
		if m.Weighted {
			w = 1 / (math.Sqrt(nb[i].dist) + 1e-6)
		}
		votes[nb[i].y] += w
	}
	return argmax(votes)
}

func sqDist(a, b []float64) float64 {
	s := 0.0
	for i := range a {
		d := a[i] - b[i]
		s += d * d
	}
	return s
}
