package ml

import "testing"

func TestPCAPipelineLearns(t *testing.T) {
	d := synthDataset(400, 21)
	m := NewPCAPipeline(2, 7, func() Classifier { return NewKNN(5) })
	if got := m.Name(); got != "pca2+knn5" {
		t.Errorf("Name = %q", got)
	}
	acc := trainAccuracy(t, m, d)
	if acc < 0.9 {
		t.Errorf("pipeline accuracy %.2f", acc)
	}
}

func TestPCAPipelineCrossValidation(t *testing.T) {
	d := synthDataset(400, 22)
	res, err := LeaveOneGroupOut(d, func() Classifier {
		return NewPCAPipeline(3, 9, func() Classifier { return NewLogReg(9) })
	})
	if err != nil {
		t.Fatal(err)
	}
	if acc := res.Accuracy(); acc < 0.8 {
		t.Errorf("pipeline LOGO accuracy %.2f", acc)
	}
}

func TestPCAPipelineEmptyFit(t *testing.T) {
	m := NewPCAPipeline(2, 1, func() Classifier { return NewKNN(1) })
	if err := m.Fit(&Dataset{Names: []string{"a"}}); err == nil {
		t.Error("empty fit should fail")
	}
}
