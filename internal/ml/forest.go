package ml

import (
	"fmt"
	"math"
	"math/rand"
)

// Forest is a random forest: bagged CART trees with per-split feature
// subsampling and majority voting.
type Forest struct {
	Trees      int
	MaxDepth   int
	MinSamples int
	Seed       int64

	trees []*Tree
	n     int
}

// NewForest builds a forest with sensible defaults.
func NewForest(trees int, seed int64) *Forest {
	if trees <= 0 {
		trees = 50
	}
	return &Forest{Trees: trees, MaxDepth: 12, MinSamples: 2, Seed: seed}
}

// Name implements Classifier.
func (f *Forest) Name() string { return fmt.Sprintf("forest%d", f.Trees) }

// Fit implements Classifier.
func (f *Forest) Fit(d *Dataset) error {
	if err := d.Validate(); err != nil {
		return err
	}
	if d.Len() == 0 {
		return fmt.Errorf("ml: empty training set")
	}
	f.n = d.NumClasses()
	rng := rand.New(rand.NewSource(f.Seed))
	maxFeat := int(math.Ceil(math.Sqrt(float64(d.Dim()))))
	f.trees = f.trees[:0]
	for i := 0; i < f.Trees; i++ {
		// Bootstrap sample.
		idx := make([]int, d.Len())
		for j := range idx {
			idx[j] = rng.Intn(d.Len())
		}
		bag := d.Subset(idx)
		t := &Tree{
			MaxDepth:    f.MaxDepth,
			MinSamples:  f.MinSamples,
			MaxFeatures: maxFeat,
			Seed:        rng.Int63(),
		}
		if err := t.Fit(bag); err != nil {
			return err
		}
		// The bag may miss high labels; vote over the full class count.
		t.n = f.n
		f.trees = append(f.trees, t)
	}
	return nil
}

// Predict implements Classifier.
func (f *Forest) Predict(x []float64) int {
	s := getScratch()
	y := f.PredictScratch(x, s)
	putScratch(s)
	return y
}

// PredictScratch implements ScratchPredictor.
func (f *Forest) PredictScratch(x []float64, s *Scratch) int {
	votes := s.floats(f.n)
	clear(votes)
	for _, t := range f.trees {
		y := t.Predict(x)
		if y >= len(votes) {
			grown := make([]float64, y+1)
			copy(grown, votes)
			votes = grown
		}
		votes[y]++
	}
	return argmax(votes)
}
