package ml

import (
	"fmt"
	"math"
	"math/rand"
)

// LogReg is multinomial logistic regression (a softmax linear model)
// trained by full-batch gradient descent. It is the simplest learned
// baseline in the model comparison.
type LogReg struct {
	Epochs    int
	LearnRate float64
	L2        float64
	Seed      int64

	w   [][]float64 // [in+1][out]
	in  int
	out int
}

// NewLogReg builds a logistic regression model with defaults.
func NewLogReg(seed int64) *LogReg {
	return &LogReg{Epochs: 600, LearnRate: 0.1, L2: 1e-4, Seed: seed}
}

// Name implements Classifier.
func (m *LogReg) Name() string { return "logreg" }

// Fit implements Classifier.
func (m *LogReg) Fit(d *Dataset) error {
	if err := d.Validate(); err != nil {
		return err
	}
	if d.Len() == 0 {
		return fmt.Errorf("ml: empty training set")
	}
	m.in = d.Dim()
	m.out = d.NumClasses()
	rng := rand.New(rand.NewSource(m.Seed))
	m.w = make([][]float64, m.in+1)
	for i := range m.w {
		m.w[i] = make([]float64, m.out)
		for j := range m.w[i] {
			m.w[i][j] = (rng.Float64()*2 - 1) * 0.01
		}
	}
	grad := make([][]float64, m.in+1)
	for i := range grad {
		grad[i] = make([]float64, m.out)
	}
	probs := make([]float64, m.out)
	n := float64(d.Len())
	for epoch := 0; epoch < m.Epochs; epoch++ {
		for i := range grad {
			for j := range grad[i] {
				grad[i][j] = 0
			}
		}
		for s, x := range d.X {
			m.softmax(x, probs)
			for k := 0; k < m.out; k++ {
				delta := probs[k]
				if k == d.Y[s] {
					delta -= 1
				}
				for i := 0; i < m.in; i++ {
					grad[i][k] += delta * x[i]
				}
				grad[m.in][k] += delta
			}
		}
		lr := m.LearnRate / (1 + 0.005*float64(epoch))
		for i := range m.w {
			for j := range m.w[i] {
				m.w[i][j] -= lr * (grad[i][j]/n + m.L2*m.w[i][j])
			}
		}
	}
	return nil
}

func (m *LogReg) softmax(x []float64, probs []float64) {
	maxv := math.Inf(-1)
	for k := 0; k < m.out; k++ {
		sum := m.w[m.in][k]
		for i := 0; i < m.in; i++ {
			sum += m.w[i][k] * x[i]
		}
		probs[k] = sum
		if sum > maxv {
			maxv = sum
		}
	}
	total := 0.0
	for k := range probs {
		probs[k] = math.Exp(probs[k] - maxv)
		total += probs[k]
	}
	for k := range probs {
		probs[k] /= total
	}
}

// Predict implements Classifier.
func (m *LogReg) Predict(x []float64) int {
	s := getScratch()
	y := m.PredictScratch(x, s)
	putScratch(s)
	return y
}

// PredictScratch implements ScratchPredictor.
func (m *LogReg) PredictScratch(x []float64, s *Scratch) int {
	probs := s.floats(m.out)
	m.softmax(x, probs)
	return argmax(probs)
}
