package ml

import (
	"sort"
	"sync"
)

// This file implements the scratch-buffer inference API: every model
// family can predict through a caller-owned Scratch whose buffers are
// reused across calls, so the warm serving path performs zero heap
// allocations per prediction while computing bit-for-bit what the
// allocating Predict methods compute (pinned by property and
// AllocsPerRun tests).

// Scratch holds the reusable buffers of one in-flight prediction. A
// Scratch is an arena: each prediction takes buffers in deterministic
// call-tree order, so after the first use every buffer already exists
// and later predictions allocate nothing. It is not safe for concurrent
// use; serve one prediction at a time per Scratch (pool them for
// concurrency — Artifact.Predict does).
type Scratch struct {
	bufs [][]float64
	next int
	nb   knnNeighbours
}

// Reset prepares the scratch for the next prediction, making every
// buffer reclaimable. Callers invoking a model's PredictScratch directly
// must Reset between top-level predictions (composite models deliberately
// do NOT reset, so their sub-models stack buffers in one arena).
func (s *Scratch) Reset() { s.next = 0 }

// floats returns the next arena buffer with length n, growing (and, on
// first use, allocating) it as needed. Contents are unspecified; callers
// that accumulate must clear first.
func (s *Scratch) floats(n int) []float64 {
	if s.next == len(s.bufs) {
		s.bufs = append(s.bufs, make([]float64, n))
	}
	b := s.bufs[s.next]
	if cap(b) < n {
		b = make([]float64, n)
		s.bufs[s.next] = b
	}
	s.next++
	return b[:n]
}

// neighbours returns the kNN neighbour buffer with length n.
func (s *Scratch) neighbours(n int) knnNeighbours {
	if cap(s.nb) < n {
		s.nb = make(knnNeighbours, n)
	}
	s.nb = s.nb[:n]
	return s.nb
}

// knnNeighbours sorts by (distance, label) — the same deterministic
// total order KNN.Predict uses. Pointer receivers keep the
// sort.Interface conversion allocation-free.
type knnNeighbours []neighbour

func (a *knnNeighbours) Len() int      { return len(*a) }
func (a *knnNeighbours) Swap(i, j int) { (*a)[i], (*a)[j] = (*a)[j], (*a)[i] }
func (a *knnNeighbours) Less(i, j int) bool {
	s := *a
	if s[i].dist != s[j].dist {
		return s[i].dist < s[j].dist
	}
	return s[i].y < s[j].y
}

var _ sort.Interface = (*knnNeighbours)(nil)

// ScratchPredictor is implemented by every model family in this package:
// PredictScratch returns exactly Predict's class while drawing all
// temporary buffers from the scratch.
type ScratchPredictor interface {
	PredictScratch(x []float64, s *Scratch) int
}

// scratchPool backs the plain Predict entry points: families without a
// caller-supplied scratch borrow one here, so even bare Classifier use
// is allocation-free once warm. Scratch buffers grow to the largest
// model shape they have served, so sharing one pool across families is
// safe (and cheap — a few small slices per scratch).
var scratchPool = sync.Pool{New: func() any { return new(Scratch) }}

// getScratch borrows a reset scratch from the package pool.
func getScratch() *Scratch {
	s := scratchPool.Get().(*Scratch)
	s.Reset()
	return s
}

// putScratch returns a scratch to the package pool.
func putScratch(s *Scratch) { scratchPool.Put(s) }

// predictScratch dispatches to the scratch path when the classifier
// supports it (every family in this package does) and falls back to the
// allocating Predict otherwise (a Classifier implemented outside the
// package).
func predictScratch(c Classifier, x []float64, s *Scratch) int {
	if sp, ok := c.(ScratchPredictor); ok {
		return sp.PredictScratch(x, s)
	}
	return c.Predict(x)
}
