//go:build !race

package ml

// raceEnabled reports that the race detector is instrumenting this
// build; allocation-count assertions are skipped (instrumentation
// itself allocates).
const raceEnabled = false
