package ml

import (
	"reflect"
	"testing"
)

func mkDataset(names []string, rows int, group string, soft bool) *Dataset {
	d := &Dataset{Names: names}
	for i := 0; i < rows; i++ {
		x := make([]float64, len(names))
		for j := range x {
			x[j] = float64(i*len(names) + j)
		}
		d.X = append(d.X, x)
		d.Y = append(d.Y, i%3)
		d.Groups = append(d.Groups, group)
		if soft {
			s := []float64{0, 0, 0}
			s[i%3] = 1
			d.Soft = append(d.Soft, s)
		}
	}
	return d
}

func TestMergeDatasets(t *testing.T) {
	names := []string{"a", "b"}
	base := mkDataset(names, 4, "p1", true)
	extra := mkDataset(names, 3, "p2", true)
	m, err := MergeDatasets(base, extra)
	if err != nil {
		t.Fatal(err)
	}
	if m.Len() != 7 || len(m.Groups) != 7 || len(m.Soft) != 7 {
		t.Fatalf("merged: len=%d groups=%d soft=%d", m.Len(), len(m.Groups), len(m.Soft))
	}
	if !reflect.DeepEqual(m.X[4], extra.X[0]) || m.Groups[4] != "p2" {
		t.Fatalf("extra rows misplaced: %+v", m.X[4])
	}
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}

	// Mixed soft labels are dropped entirely, never partially present.
	noSoft := mkDataset(names, 2, "p3", false)
	m2, err := MergeDatasets(base, noSoft)
	if err != nil {
		t.Fatal(err)
	}
	if len(m2.Soft) != 0 {
		t.Fatalf("partial soft labels survived the merge: %d rows", len(m2.Soft))
	}

	// Empty sides pass through.
	if m3, err := MergeDatasets(base, &Dataset{Names: names}); err != nil || m3.Len() != 4 {
		t.Fatalf("empty extra: %v len=%d", err, m3.Len())
	}

	// Schema mismatches are errors, not silent misalignment.
	if _, err := MergeDatasets(base, mkDataset([]string{"a", "zzz"}, 2, "p", false)); err == nil {
		t.Error("renamed feature accepted")
	}
	if _, err := MergeDatasets(base, mkDataset([]string{"a"}, 2, "p", false)); err == nil {
		t.Error("narrower schema accepted")
	}
	if _, err := MergeDatasets(nil, base); err == nil {
		t.Error("nil base accepted")
	}
}

func TestStratifiedHoldout(t *testing.T) {
	// 30 samples over 3 classes (10 each), plus a singleton class.
	d := &Dataset{}
	for i := 0; i < 30; i++ {
		d.X = append(d.X, []float64{float64(i)})
		d.Y = append(d.Y, i%3)
	}
	d.X = append(d.X, []float64{99})
	d.Y = append(d.Y, 7) // singleton class

	train, hold := StratifiedHoldout(d, 0.25, 42)
	if len(train)+len(hold) != 31 {
		t.Fatalf("split loses samples: %d + %d", len(train), len(hold))
	}
	// Every index appears exactly once across the two sides.
	seen := map[int]int{}
	for _, i := range train {
		seen[i]++
	}
	for _, i := range hold {
		seen[i]++
	}
	for i := 0; i < 31; i++ {
		if seen[i] != 1 {
			t.Fatalf("index %d appears %d times", i, seen[i])
		}
	}
	// Stratification: each 10-sample class yields round(2.5) = 3 holdout
	// samples; the singleton class yields none.
	perClass := map[int]int{}
	for _, i := range hold {
		perClass[d.Y[i]]++
	}
	if perClass[0] != 3 || perClass[1] != 3 || perClass[2] != 3 || perClass[7] != 0 {
		t.Fatalf("holdout per class = %v", perClass)
	}
	// Deterministic: same inputs, same split.
	train2, hold2 := StratifiedHoldout(d, 0.25, 42)
	if !reflect.DeepEqual(train, train2) || !reflect.DeepEqual(hold, hold2) {
		t.Fatal("split is not deterministic")
	}
	// A different seed moves the slice (with overwhelming probability).
	_, hold3 := StratifiedHoldout(d, 0.25, 1)
	if reflect.DeepEqual(hold, hold3) {
		t.Log("warning: different seeds produced the same holdout (possible but unlikely)")
	}
	// Degenerate fractions stay safe.
	tAll, hNone := StratifiedHoldout(d, 0, 42)
	if len(hNone) != 0 || len(tAll) != 31 {
		t.Fatalf("frac=0 split: %d/%d", len(tAll), len(hNone))
	}
	tHalf, hHalf := StratifiedHoldout(d, 0.9, 42) // clamped to 0.5
	if len(hHalf) >= len(tHalf) {
		t.Fatalf("clamp failed: train %d, hold %d", len(tHalf), len(hHalf))
	}
}

func TestArtifactLineageRoundTrip(t *testing.T) {
	d := synthDataset(80, 5)
	a, err := TrainArtifact(d, func() Classifier { return NewKNN(3) })
	if err != nil {
		t.Fatal(err)
	}
	a.Platform = "mc2"
	a.Lineage = &Lineage{
		ModelVersion: 3, Parent: 2,
		SeedRecords: 80, ObsRecords: 12,
		GateLive: 0.5, GateCandidate: 0.75, HoldoutSize: 20,
	}
	dir := t.TempDir()
	if err := SaveArtifact(dir+"/a.json", a); err != nil {
		t.Fatal(err)
	}
	b, err := LoadArtifact(dir + "/a.json")
	if err != nil {
		t.Fatal(err)
	}
	if b.Lineage == nil || !reflect.DeepEqual(*b.Lineage, *a.Lineage) {
		t.Fatalf("lineage did not round-trip: %+v", b.Lineage)
	}
	// Artifacts without lineage keep omitting it (golden-format safety).
	a.Lineage = nil
	if err := SaveArtifact(dir+"/b.json", a); err != nil {
		t.Fatal(err)
	}
	c, err := LoadArtifact(dir + "/b.json")
	if err != nil {
		t.Fatal(err)
	}
	if c.Lineage != nil {
		t.Fatalf("nil lineage round-tripped as %+v", c.Lineage)
	}
}

func TestAccuracyOn(t *testing.T) {
	d := synthDataset(60, 9)
	a, err := TrainArtifact(d, func() Classifier { return NewKNN(1) })
	if err != nil {
		t.Fatal(err)
	}
	all := make([]int, d.Len())
	for i := range all {
		all[i] = i
	}
	// 1-NN on its own training set is exact.
	if acc := a.AccuracyOn(d, all); acc != 1 {
		t.Fatalf("train accuracy = %g, want 1", acc)
	}
	if acc := a.AccuracyOn(d, nil); acc != 0 {
		t.Fatalf("empty slice accuracy = %g", acc)
	}
}
