package ml

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sync"
)

// This file implements deterministic Save/Load serialization for every
// model family, so a trained predictor survives the training process and
// can be deployed by a long-lived serving engine without retraining.
//
// Models serialize to a tagged JSON envelope {kind, spec}. Serialization
// is deterministic: encoding/json emits struct fields in declaration
// order and float64 values in their shortest exact representation, so a
// Save→Load→Save round trip is byte-identical and a loaded model's
// predictions are bit-for-bit those of the model that was saved.
//
// Composite models (TwoStage, PCAPipeline) serialize their fitted
// sub-models but not their constructor callbacks (KindOf, NewGate,
// NewInner, ...): a loaded composite is predict-only and must not be
// refitted. Every other loaded family can be refitted freely.

// modelEnvelope is the on-disk form of one classifier.
type modelEnvelope struct {
	Kind string          `json:"kind"`
	Spec json.RawMessage `json:"spec"`
}

// Model kind tags. These are a persistence format: never renumber or
// reuse them.
const (
	kindKNN      = "knn"
	kindTree     = "tree"
	kindForest   = "forest"
	kindLogReg   = "logreg"
	kindMLP      = "mlp"
	kindTwoStage = "twostage"
	kindPipeline = "pca-pipeline"
)

type knnSpec struct {
	K        int         `json:"k"`
	Weighted bool        `json:"weighted"`
	X        [][]float64 `json:"x"`
	Y        []int       `json:"y"`
	Classes  int         `json:"classes"`
}

// treeNodeSpec is one flattened tree node; children are indices into the
// node array (-1 = none). Node 0 is the root.
type treeNodeSpec struct {
	Feature int     `json:"f"`
	Thresh  float64 `json:"t"`
	Left    int     `json:"l"`
	Right   int     `json:"r"`
	Label   int     `json:"y"`
	Leaf    bool    `json:"leaf,omitempty"`
}

type treeSpec struct {
	MaxDepth    int            `json:"maxDepth"`
	MinSamples  int            `json:"minSamples"`
	MaxFeatures int            `json:"maxFeatures,omitempty"`
	Seed        int64          `json:"seed,omitempty"`
	Classes     int            `json:"classes"`
	Nodes       []treeNodeSpec `json:"nodes"`
}

type forestSpec struct {
	Trees      int        `json:"trees"`
	MaxDepth   int        `json:"maxDepth"`
	MinSamples int        `json:"minSamples"`
	Seed       int64      `json:"seed,omitempty"`
	Classes    int        `json:"classes"`
	Fitted     []treeSpec `json:"fitted"`
}

type logregSpec struct {
	Epochs    int         `json:"epochs"`
	LearnRate float64     `json:"learnRate"`
	L2        float64     `json:"l2"`
	Seed      int64       `json:"seed,omitempty"`
	In        int         `json:"in"`
	Out       int         `json:"out"`
	W         [][]float64 `json:"w"`
}

type mlpSpec struct {
	Hidden    int         `json:"hidden"`
	Epochs    int         `json:"epochs"`
	LearnRate float64     `json:"learnRate"`
	Momentum  float64     `json:"momentum"`
	L2        float64     `json:"l2"`
	BatchSize int         `json:"batchSize"`
	Seed      int64       `json:"seed,omitempty"`
	In        int         `json:"in"`
	Out       int         `json:"out"`
	W1        [][]float64 `json:"w1"`
	W2        [][]float64 `json:"w2"`
}

type twoStageSpec struct {
	CPUClass int            `json:"cpuClass"`
	GPUClass int            `json:"gpuClass"`
	Fallback int            `json:"fallback"`
	Gate     modelEnvelope  `json:"gate"`
	Split    *modelEnvelope `json:"split,omitempty"`
}

type pipelineSpec struct {
	K     int           `json:"k"`
	Seed  int64         `json:"seed,omitempty"`
	PCA   *PCA          `json:"pca"`
	Inner modelEnvelope `json:"inner"`
}

// pcaJSON is the serialized form of a PCA (the mean is unexported).
type pcaJSON struct {
	Components [][]float64 `json:"components"`
	Explained  []float64   `json:"explained"`
	Mean       []float64   `json:"mean"`
}

// MarshalJSON implements json.Marshaler for PCA.
func (p *PCA) MarshalJSON() ([]byte, error) {
	return json.Marshal(pcaJSON{Components: p.Components, Explained: p.Explained, Mean: p.mean})
}

// UnmarshalJSON implements json.Unmarshaler for PCA.
func (p *PCA) UnmarshalJSON(data []byte) error {
	var s pcaJSON
	if err := json.Unmarshal(data, &s); err != nil {
		return err
	}
	p.Components, p.Explained, p.mean = s.Components, s.Explained, s.Mean
	return nil
}

// MarshalModel serializes a fitted classifier to its JSON envelope.
func MarshalModel(c Classifier) ([]byte, error) {
	env, err := envelope(c)
	if err != nil {
		return nil, err
	}
	return json.Marshal(env)
}

// envelope builds the tagged form of one classifier.
func envelope(c Classifier) (modelEnvelope, error) {
	var (
		kind string
		spec any
	)
	switch m := c.(type) {
	case *KNN:
		kind, spec = kindKNN, knnSpec{K: m.K, Weighted: m.Weighted, X: m.x, Y: m.y, Classes: m.n}
	case *Tree:
		kind, spec = kindTree, treeSpec{
			MaxDepth: m.MaxDepth, MinSamples: m.MinSamples, MaxFeatures: m.MaxFeatures,
			Seed: m.Seed, Classes: m.n, Nodes: flattenTree(m.root),
		}
	case *Forest:
		fs := forestSpec{Trees: m.Trees, MaxDepth: m.MaxDepth, MinSamples: m.MinSamples, Seed: m.Seed, Classes: m.n}
		for _, t := range m.trees {
			fs.Fitted = append(fs.Fitted, treeSpec{
				MaxDepth: t.MaxDepth, MinSamples: t.MinSamples, MaxFeatures: t.MaxFeatures,
				Seed: t.Seed, Classes: t.n, Nodes: flattenTree(t.root),
			})
		}
		kind, spec = kindForest, fs
	case *LogReg:
		kind, spec = kindLogReg, logregSpec{
			Epochs: m.Epochs, LearnRate: m.LearnRate, L2: m.L2, Seed: m.Seed,
			In: m.in, Out: m.out, W: m.w,
		}
	case *MLP:
		kind, spec = kindMLP, mlpSpec{
			Hidden: m.Hidden, Epochs: m.Epochs, LearnRate: m.LearnRate, Momentum: m.Momentum,
			L2: m.L2, BatchSize: m.BatchSize, Seed: m.Seed,
			In: m.in, Out: m.out, W1: m.w1, W2: m.w2,
		}
	case *TwoStage:
		gate, err := envelope(m.gate)
		if err != nil {
			return modelEnvelope{}, fmt.Errorf("ml: twostage gate: %w", err)
		}
		ts := twoStageSpec{CPUClass: m.CPUClass, GPUClass: m.GPUClass, Fallback: m.fallback, Gate: gate}
		if m.split != nil {
			split, err := envelope(m.split)
			if err != nil {
				return modelEnvelope{}, fmt.Errorf("ml: twostage split: %w", err)
			}
			ts.Split = &split
		}
		kind, spec = kindTwoStage, ts
	case *PCAPipeline:
		inner, err := envelope(m.inner)
		if err != nil {
			return modelEnvelope{}, fmt.Errorf("ml: pipeline inner: %w", err)
		}
		kind, spec = kindPipeline, pipelineSpec{K: m.K, Seed: m.Seed, PCA: m.pca, Inner: inner}
	default:
		return modelEnvelope{}, fmt.Errorf("ml: cannot serialize model type %T", c)
	}
	raw, err := json.Marshal(spec)
	if err != nil {
		return modelEnvelope{}, err
	}
	return modelEnvelope{Kind: kind, Spec: raw}, nil
}

// UnmarshalModel deserializes a classifier from its JSON envelope. Loaded
// composite models (twostage, pca-pipeline) are predict-only; every other
// family can be refitted.
func UnmarshalModel(data []byte) (Classifier, error) {
	var env modelEnvelope
	if err := json.Unmarshal(data, &env); err != nil {
		return nil, err
	}
	return fromEnvelope(env)
}

func fromEnvelope(env modelEnvelope) (Classifier, error) {
	switch env.Kind {
	case kindKNN:
		var s knnSpec
		if err := json.Unmarshal(env.Spec, &s); err != nil {
			return nil, err
		}
		return &KNN{K: s.K, Weighted: s.Weighted, x: s.X, y: s.Y, n: s.Classes}, nil
	case kindTree:
		var s treeSpec
		if err := json.Unmarshal(env.Spec, &s); err != nil {
			return nil, err
		}
		root, err := unflattenTree(s.Nodes)
		if err != nil {
			return nil, err
		}
		return &Tree{
			MaxDepth: s.MaxDepth, MinSamples: s.MinSamples, MaxFeatures: s.MaxFeatures,
			Seed: s.Seed, root: root, n: s.Classes,
		}, nil
	case kindForest:
		var s forestSpec
		if err := json.Unmarshal(env.Spec, &s); err != nil {
			return nil, err
		}
		f := &Forest{Trees: s.Trees, MaxDepth: s.MaxDepth, MinSamples: s.MinSamples, Seed: s.Seed, n: s.Classes}
		for i, ts := range s.Fitted {
			root, err := unflattenTree(ts.Nodes)
			if err != nil {
				return nil, fmt.Errorf("ml: forest tree %d: %w", i, err)
			}
			f.trees = append(f.trees, &Tree{
				MaxDepth: ts.MaxDepth, MinSamples: ts.MinSamples, MaxFeatures: ts.MaxFeatures,
				Seed: ts.Seed, root: root, n: ts.Classes,
			})
		}
		return f, nil
	case kindLogReg:
		var s logregSpec
		if err := json.Unmarshal(env.Spec, &s); err != nil {
			return nil, err
		}
		return &LogReg{
			Epochs: s.Epochs, LearnRate: s.LearnRate, L2: s.L2, Seed: s.Seed,
			w: s.W, in: s.In, out: s.Out,
		}, nil
	case kindMLP:
		var s mlpSpec
		if err := json.Unmarshal(env.Spec, &s); err != nil {
			return nil, err
		}
		return &MLP{
			Hidden: s.Hidden, Epochs: s.Epochs, LearnRate: s.LearnRate, Momentum: s.Momentum,
			L2: s.L2, BatchSize: s.BatchSize, Seed: s.Seed,
			w1: s.W1, w2: s.W2, in: s.In, out: s.Out,
		}, nil
	case kindTwoStage:
		var s twoStageSpec
		if err := json.Unmarshal(env.Spec, &s); err != nil {
			return nil, err
		}
		gate, err := fromEnvelope(s.Gate)
		if err != nil {
			return nil, fmt.Errorf("ml: twostage gate: %w", err)
		}
		m := &TwoStage{CPUClass: s.CPUClass, GPUClass: s.GPUClass, gate: gate, fallback: s.Fallback}
		if s.Split != nil {
			if m.split, err = fromEnvelope(*s.Split); err != nil {
				return nil, fmt.Errorf("ml: twostage split: %w", err)
			}
		}
		return m, nil
	case kindPipeline:
		var s pipelineSpec
		if err := json.Unmarshal(env.Spec, &s); err != nil {
			return nil, err
		}
		inner, err := fromEnvelope(s.Inner)
		if err != nil {
			return nil, fmt.Errorf("ml: pipeline inner: %w", err)
		}
		return &PCAPipeline{K: s.K, Seed: s.Seed, pca: s.PCA, inner: inner}, nil
	default:
		return nil, fmt.Errorf("ml: unknown model kind %q", env.Kind)
	}
}

// flattenTree serializes a node tree to an array in preorder; node 0 is
// the root, children are array indices.
func flattenTree(root *treeNode) []treeNodeSpec {
	if root == nil {
		return nil
	}
	var nodes []treeNodeSpec
	var walk func(n *treeNode) int
	walk = func(n *treeNode) int {
		i := len(nodes)
		nodes = append(nodes, treeNodeSpec{
			Feature: n.feature, Thresh: n.thresh, Label: n.label, Leaf: n.leaf,
			Left: -1, Right: -1,
		})
		if n.left != nil {
			nodes[i].Left = walk(n.left)
		}
		if n.right != nil {
			nodes[i].Right = walk(n.right)
		}
		return i
	}
	walk(root)
	return nodes
}

// unflattenTree rebuilds the pointer tree from the serialized array.
func unflattenTree(specs []treeNodeSpec) (*treeNode, error) {
	if len(specs) == 0 {
		return nil, nil
	}
	nodes := make([]treeNode, len(specs))
	for i, s := range specs {
		nodes[i] = treeNode{feature: s.Feature, thresh: s.Thresh, label: s.Label, leaf: s.Leaf}
		for _, child := range [2]int{s.Left, s.Right} {
			if child != -1 && (child <= i || child >= len(specs)) {
				return nil, fmt.Errorf("ml: corrupt tree: node %d has child index %d", i, child)
			}
		}
		if s.Left != -1 {
			nodes[i].left = &nodes[s.Left]
		}
		if s.Right != -1 {
			nodes[i].right = &nodes[s.Right]
		}
	}
	return &nodes[0], nil
}

// ---------------------------------------------------------------------------
// Artifact: the deployable unit — scaler + model + the metadata needed to
// apply them to raw feature vectors.
// ---------------------------------------------------------------------------

// ArtifactVersion is the current artifact format version. Bump only with
// a migration path for existing artifacts.
const ArtifactVersion = 1

// Lineage records where a retrained model came from: its position in the
// version chain, the composition of its training set, and the
// no-regression gate scores that admitted it. The adaptive loop
// (internal/engine) stamps one onto every artifact it promotes, so a
// model file is self-describing — an operator can read back why any
// serving model exists.
type Lineage struct {
	// ModelVersion is the registry version number (1 = the seed model).
	ModelVersion int `json:"modelVersion"`
	// Parent is the version this model was gated against (0 = none).
	Parent int `json:"parent,omitempty"`
	// SeedRecords and ObsRecords are the training-set composition: rows
	// from the offline training database vs. rows harvested from the
	// observation log.
	SeedRecords int `json:"seedRecords,omitempty"`
	ObsRecords  int `json:"obsRecords,omitempty"`
	// GateLive and GateCandidate are the held-out-slice accuracies of
	// the then-live configuration (seed data only) and this candidate's
	// configuration (seed + observations), each refit without the
	// holdout, at promotion time; the gate requires GateCandidate >=
	// GateLive over HoldoutSize samples.
	GateLive      float64 `json:"gateLive,omitempty"`
	GateCandidate float64 `json:"gateCandidate,omitempty"`
	HoldoutSize   int     `json:"holdoutSize,omitempty"`
	// TrainedAtUnix is the promotion wall clock in Unix seconds (0 when
	// the trainer wants deterministic artifacts, e.g. tests).
	TrainedAtUnix int64 `json:"trainedAt,omitempty"`
}

// Artifact bundles a trained model with its feature scaler and the
// metadata a deployment engine needs to serve it: which platform it was
// trained for, which program (if any) was held out of training, the
// feature schema and the class space. An artifact's Predict is
// bit-for-bit the predictor that was trained, across Save/Load.
type Artifact struct {
	Version int `json:"version"`
	// Platform names the device platform whose records trained the model.
	Platform string `json:"platform,omitempty"`
	// ModelName is the model family tag (Classifier.Name at save time).
	ModelName string `json:"model"`
	// LeftOut names the program excluded from training (leave-one-out
	// evaluation artifacts); empty for a model trained on everything.
	LeftOut string `json:"leftOut,omitempty"`
	// FeatureNames is the expected raw feature vector schema, in order.
	FeatureNames []string `json:"featureNames,omitempty"`
	// Space is the class space: Space[class] is the partition string.
	Space []string `json:"space,omitempty"`
	// Lineage is the adaptive-loop provenance (nil for offline-trained
	// artifacts, which predate the version chain).
	Lineage *Lineage `json:"lineage,omitempty"`
	// Scaler standardizes raw feature vectors before prediction.
	Scaler *Scaler `json:"scaler"`
	// Model is the fitted classifier.
	Model Classifier `json:"-"`

	// scratch recycles per-prediction buffers across Predict calls, so
	// the warm serving path allocates nothing. A plain pointer keeps
	// Artifact copyable (copies share the pool); it is set by the
	// artifact constructors (TrainArtifact, UnmarshalJSON) — hand-built
	// artifacts fall back to a fresh scratch per call, which is merely
	// slower, never wrong.
	scratch *sync.Pool
}

// artifactJSON is the on-disk layout; Model is expanded to its envelope.
type artifactJSON struct {
	Version      int           `json:"version"`
	Platform     string        `json:"platform,omitempty"`
	ModelName    string        `json:"model"`
	LeftOut      string        `json:"leftOut,omitempty"`
	FeatureNames []string      `json:"featureNames,omitempty"`
	Space        []string      `json:"space,omitempty"`
	Lineage      *Lineage      `json:"lineage,omitempty"`
	Scaler       *Scaler       `json:"scaler"`
	ModelSpec    modelEnvelope `json:"modelSpec"`
}

// MarshalJSON implements json.Marshaler.
func (a *Artifact) MarshalJSON() ([]byte, error) {
	if a.Model == nil {
		return nil, fmt.Errorf("ml: artifact has no model")
	}
	env, err := envelope(a.Model)
	if err != nil {
		return nil, err
	}
	return json.Marshal(artifactJSON{
		Version: a.Version, Platform: a.Platform, ModelName: a.ModelName, LeftOut: a.LeftOut,
		FeatureNames: a.FeatureNames, Space: a.Space, Lineage: a.Lineage, Scaler: a.Scaler, ModelSpec: env,
	})
}

// UnmarshalJSON implements json.Unmarshaler.
func (a *Artifact) UnmarshalJSON(data []byte) error {
	var s artifactJSON
	if err := json.Unmarshal(data, &s); err != nil {
		return err
	}
	model, err := fromEnvelope(s.ModelSpec)
	if err != nil {
		return err
	}
	*a = Artifact{
		Version: s.Version, Platform: s.Platform, ModelName: s.ModelName, LeftOut: s.LeftOut,
		FeatureNames: s.FeatureNames, Space: s.Space, Lineage: s.Lineage, Scaler: s.Scaler, Model: model,
		scratch: newScratchPool(),
	}
	return nil
}

// newScratchPool builds the per-artifact prediction-scratch pool.
func newScratchPool() *sync.Pool {
	return &sync.Pool{New: func() any { return new(Scratch) }}
}

// Predict scales the raw feature vector and returns the model's class.
// The class is returned raw — callers decide how to handle a prediction
// outside their class space. Warm calls on a constructed artifact
// perform zero heap allocations: scaling and inference run through a
// pooled scratch.
func (a *Artifact) Predict(x []float64) int {
	var s *Scratch
	if a.scratch != nil {
		s = a.scratch.Get().(*Scratch)
	} else {
		s = new(Scratch)
	}
	y := a.PredictScratch(x, s)
	if a.scratch != nil {
		a.scratch.Put(s)
	}
	return y
}

// PredictScratch is Predict with a caller-owned scratch: batch callers
// (the /predict/batch endpoint, evaluation sweeps) reuse one scratch
// across many points instead of hitting the pool per point.
func (a *Artifact) PredictScratch(x []float64, s *Scratch) int {
	s.Reset()
	if a.Scaler != nil {
		x = a.Scaler.TransformInto(x, s.floats(len(x)))
	}
	return predictScratch(a.Model, x, s)
}

// TrainArtifact fits a fresh model (with feature scaling) on the dataset
// and wraps it as a deployable artifact. This is the serializing form of
// TrainFull: the returned artifact predicts exactly what the in-memory
// model does, before and after a Save/Load round trip.
func TrainArtifact(d *Dataset, mk NewModel) (*Artifact, error) {
	if err := d.Validate(); err != nil {
		return nil, err
	}
	scaler := FitScaler(d)
	model := mk()
	if err := model.Fit(scaler.TransformDataset(d)); err != nil {
		return nil, err
	}
	return &Artifact{
		Version:      ArtifactVersion,
		ModelName:    model.Name(),
		FeatureNames: append([]string{}, d.Names...),
		Scaler:       scaler,
		Model:        model,
		scratch:      newScratchPool(),
	}, nil
}

// EncodeArtifact writes the artifact as indented JSON (deterministic:
// identical artifacts produce identical bytes).
func EncodeArtifact(w io.Writer, a *Artifact) error {
	data, err := json.MarshalIndent(a, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	_, err = w.Write(data)
	return err
}

// DecodeArtifact reads an artifact written by EncodeArtifact.
func DecodeArtifact(r io.Reader) (*Artifact, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, err
	}
	a := &Artifact{}
	if err := json.Unmarshal(data, a); err != nil {
		return nil, err
	}
	if a.Version <= 0 || a.Version > ArtifactVersion {
		return nil, fmt.Errorf("ml: unsupported artifact version %d (max %d)", a.Version, ArtifactVersion)
	}
	return a, nil
}

// SaveArtifact writes the artifact to path, creating parent directories.
// The write is atomic (temp file + rename) so a serving engine never
// observes a torn artifact.
func SaveArtifact(path string, a *Artifact) error {
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return err
	}
	tmp, err := os.CreateTemp(filepath.Dir(path), ".artifact-*")
	if err != nil {
		return err
	}
	if err := EncodeArtifact(tmp, a); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	// CreateTemp files are 0600; artifacts are shared read-only data
	// (trained by one user, served by another), like the database.
	if err := os.Chmod(tmp.Name(), 0o644); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	return os.Rename(tmp.Name(), path)
}

// LoadArtifact reads an artifact from path.
func LoadArtifact(path string) (*Artifact, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	a, err := DecodeArtifact(f)
	if err != nil {
		return nil, fmt.Errorf("ml: artifact %s: %w", path, err)
	}
	return a, nil
}
