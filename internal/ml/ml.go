// Package ml implements the offline-trained prediction models of the
// paper's training phase: given a combined static+runtime feature vector,
// predict the best task partitioning (a class out of the discretized
// partitioning space).
//
// The paper says only "machine learning"; the Insieme line of work used
// artificial neural networks. This package provides five model families —
// k-nearest-neighbours, CART decision trees, random forests, multinomial
// logistic regression and a single-hidden-layer MLP — so the model
// comparison experiment (DESIGN.md T4) can justify the default (MLP).
//
// Everything is deterministic: models take explicit seeds and no global
// randomness is used.
package ml

import (
	"fmt"
	"math"
)

// Dataset is a labelled feature matrix. Group tags samples by the program
// they come from, enabling leave-one-program-out cross validation (the
// deployment scenario: predict for an unseen program).
type Dataset struct {
	Names  []string    // feature names, len = feature dimension
	X      [][]float64 // samples x features
	Y      []int       // class labels (indices into the partition space)
	Groups []string    // program name per sample
	// Soft optionally holds per-sample target distributions over classes
	// (cost-sensitive labels: near-optimal partitionings carry probability
	// mass proportional to how close their measured time is to the
	// oracle). Models that support distribution targets (MLP) use Soft
	// when present; others fall back to Y. Rows must sum to 1.
	Soft [][]float64
}

// Len returns the number of samples.
func (d *Dataset) Len() int { return len(d.X) }

// Dim returns the feature dimension.
func (d *Dataset) Dim() int {
	if len(d.X) == 0 {
		return len(d.Names)
	}
	return len(d.X[0])
}

// NumClasses returns 1 + the maximum label, or the soft-target width when
// distribution labels are present (they span the whole class space).
func (d *Dataset) NumClasses() int {
	m := 0
	for _, y := range d.Y {
		if y+1 > m {
			m = y + 1
		}
	}
	if len(d.Soft) > 0 && len(d.Soft[0]) > m {
		m = len(d.Soft[0])
	}
	return m
}

// Validate checks structural consistency.
func (d *Dataset) Validate() error {
	if len(d.X) != len(d.Y) {
		return fmt.Errorf("ml: %d samples but %d labels", len(d.X), len(d.Y))
	}
	if len(d.Groups) != 0 && len(d.Groups) != len(d.X) {
		return fmt.Errorf("ml: %d samples but %d groups", len(d.X), len(d.Groups))
	}
	dim := d.Dim()
	for i, x := range d.X {
		if len(x) != dim {
			return fmt.Errorf("ml: sample %d has %d features, want %d", i, len(x), dim)
		}
		for j, v := range x {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return fmt.Errorf("ml: sample %d feature %d is %v", i, j, v)
			}
		}
		if d.Y[i] < 0 {
			return fmt.Errorf("ml: sample %d has negative label", i)
		}
	}
	return nil
}

// Subset returns the dataset restricted to the given sample indices.
func (d *Dataset) Subset(idx []int) *Dataset {
	out := &Dataset{Names: d.Names}
	for _, i := range idx {
		out.X = append(out.X, d.X[i])
		out.Y = append(out.Y, d.Y[i])
		if len(d.Groups) > 0 {
			out.Groups = append(out.Groups, d.Groups[i])
		}
		if len(d.Soft) > 0 {
			out.Soft = append(out.Soft, d.Soft[i])
		}
	}
	return out
}

// SplitByGroup partitions sample indices into held-out (group == name) and
// the rest.
func (d *Dataset) SplitByGroup(name string) (train, test []int) {
	for i, g := range d.Groups {
		if g == name {
			test = append(test, i)
		} else {
			train = append(train, i)
		}
	}
	return train, test
}

// GroupNames returns the distinct group names in first-seen order.
func (d *Dataset) GroupNames() []string {
	seen := map[string]bool{}
	var out []string
	for _, g := range d.Groups {
		if !seen[g] {
			seen[g] = true
			out = append(out, g)
		}
	}
	return out
}

// Classifier is a trained or trainable classification model.
type Classifier interface {
	// Fit trains the model. The dataset must be non-empty and scaled
	// consistently with later Predict inputs.
	Fit(d *Dataset) error
	// Predict returns the class for one feature vector.
	Predict(x []float64) int
	// Name identifies the model family for reports.
	Name() string
}

// Scaler standardizes features to zero mean and unit variance, the usual
// preconditioning for distance- and gradient-based models.
type Scaler struct {
	Mean []float64
	Std  []float64
}

// FitScaler computes per-feature statistics over the dataset.
func FitScaler(d *Dataset) *Scaler {
	dim := d.Dim()
	s := &Scaler{Mean: make([]float64, dim), Std: make([]float64, dim)}
	n := float64(len(d.X))
	if n == 0 {
		for j := range s.Std {
			s.Std[j] = 1
		}
		return s
	}
	for _, x := range d.X {
		for j, v := range x {
			s.Mean[j] += v
		}
	}
	for j := range s.Mean {
		s.Mean[j] /= n
	}
	for _, x := range d.X {
		for j, v := range x {
			dv := v - s.Mean[j]
			s.Std[j] += dv * dv
		}
	}
	for j := range s.Std {
		s.Std[j] = math.Sqrt(s.Std[j] / n)
		if s.Std[j] < 1e-9 {
			s.Std[j] = 1 // constant feature: leave centred at zero
		}
	}
	return s
}

// Transform returns the standardized copy of x.
func (s *Scaler) Transform(x []float64) []float64 {
	return s.TransformInto(x, make([]float64, len(x)))
}

// TransformInto standardizes x into dst, which must have length len(x),
// and returns it. The scratch-inference counterpart of Transform.
func (s *Scaler) TransformInto(x, dst []float64) []float64 {
	for j, v := range x {
		dst[j] = (v - s.Mean[j]) / s.Std[j]
	}
	return dst
}

// TransformDataset returns a standardized copy of the dataset.
func (s *Scaler) TransformDataset(d *Dataset) *Dataset {
	out := &Dataset{Names: d.Names, Y: append([]int{}, d.Y...), Soft: d.Soft}
	if len(d.Groups) > 0 {
		out.Groups = append([]string{}, d.Groups...)
	}
	for _, x := range d.X {
		out.X = append(out.X, s.Transform(x))
	}
	return out
}

// argmax returns the index of the largest value.
func argmax(v []float64) int {
	best, bi := math.Inf(-1), 0
	for i, x := range v {
		if x > best {
			best, bi = x, i
		}
	}
	return bi
}

// majority returns the most frequent label, breaking ties toward the
// smaller label for determinism.
func majority(labels []int, numClasses int) int {
	counts := make([]int, numClasses)
	for _, y := range labels {
		if y >= len(counts) {
			grown := make([]int, y+1)
			copy(grown, counts)
			counts = grown
		}
		counts[y]++
	}
	best, bi := -1, 0
	for c, n := range counts {
		if n > best {
			best, bi = n, c
		}
	}
	return bi
}
