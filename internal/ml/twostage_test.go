package ml

import (
	"math/rand"
	"testing"
)

// stageDataset builds a problem with the two-stage structure: one feature
// decides the regime (class 0 = "cpu", class 1 = "gpu", classes 2/3 =
// mixed splits distinguished by a second feature).
func stageDataset(n int, seed int64) *Dataset {
	rng := rand.New(rand.NewSource(seed))
	d := &Dataset{Names: []string{"size", "mixness"}}
	groups := []string{"p0", "p1", "p2", "p3"}
	for i := 0; i < n; i++ {
		size := rng.Float64()*4 - 2
		mix := rng.Float64()*2 - 1
		var y int
		switch {
		case size < -0.7:
			y = 0 // cpu-only regime
		case size > 0.7:
			y = 1 // gpu-only regime
		case mix > 0:
			y = 2
		default:
			y = 3
		}
		d.X = append(d.X, []float64{size, mix})
		d.Y = append(d.Y, y)
		d.Groups = append(d.Groups, groups[i%len(groups)])
	}
	return d
}

func stageKind(class int) StageKind {
	switch class {
	case 0:
		return StageCPUOnly
	case 1:
		return StageGPUOnly
	default:
		return StageMixed
	}
}

func newStageModel() Classifier {
	return NewTwoStage(stageKind, 0, 1,
		func() Classifier { return NewKNN(5) },
		func() Classifier { return NewKNN(5) })
}

func TestTwoStageLearnsRegimes(t *testing.T) {
	d := stageDataset(400, 1)
	m := newStageModel()
	sc := FitScaler(d)
	sd := sc.TransformDataset(d)
	if err := m.Fit(sd); err != nil {
		t.Fatal(err)
	}
	hit := 0
	for i, x := range sd.X {
		if m.Predict(x) == sd.Y[i] {
			hit++
		}
	}
	if acc := float64(hit) / float64(len(sd.X)); acc < 0.9 {
		t.Errorf("two-stage accuracy %.2f, want >= 0.9", acc)
	}
}

func TestTwoStageSingleDeviceLabels(t *testing.T) {
	d := stageDataset(300, 2)
	m := newStageModel()
	if err := m.Fit(d); err != nil {
		t.Fatal(err)
	}
	// Deep in the CPU regime the prediction must be exactly CPUClass.
	if got := m.Predict([]float64{-1.8, 0}); got != 0 {
		t.Errorf("cpu regime predicted class %d, want 0", got)
	}
	if got := m.Predict([]float64{1.8, 0}); got != 1 {
		t.Errorf("gpu regime predicted class %d, want 1", got)
	}
}

func TestTwoStageNoMixedSamples(t *testing.T) {
	// All training labels single-device: stage 2 must gracefully fall back.
	d := &Dataset{
		Names: []string{"f"},
		X:     [][]float64{{-1}, {-0.9}, {1}, {0.9}},
		Y:     []int{0, 0, 1, 1},
	}
	m := newStageModel()
	if err := m.Fit(d); err != nil {
		t.Fatal(err)
	}
	// Any prediction must be a valid class.
	for _, x := range [][]float64{{-1}, {0}, {1}} {
		y := m.Predict(x)
		if y < 0 {
			t.Errorf("invalid prediction %d", y)
		}
	}
}

func TestTwoStageInCrossValidation(t *testing.T) {
	d := stageDataset(400, 3)
	res, err := LeaveOneGroupOut(d, newStageModel)
	if err != nil {
		t.Fatal(err)
	}
	if acc := res.Accuracy(); acc < 0.85 {
		t.Errorf("two-stage LOGO accuracy %.2f", acc)
	}
}

func TestTwoStageEmptyFit(t *testing.T) {
	if err := newStageModel().Fit(&Dataset{Names: []string{"a"}}); err == nil {
		t.Error("empty fit should fail")
	}
}
