package ml

import "fmt"

// StageKind partitions the label space for the two-stage predictor.
type StageKind int

// Stage kinds: the first stage decides which regime the sample is in.
const (
	StageCPUOnly StageKind = iota
	StageGPUOnly
	StageMixed
)

// TwoStage is the hierarchical predictor of the Insieme follow-up work:
// a first-stage classifier decides whether the program/size should run
// CPU-only, GPU-only or split; only split cases go to a second-stage
// classifier over the full partition space. This factors the easy,
// high-frequency decisions (single-device) away from the hard one (which
// split), which matters with few training samples and many classes.
type TwoStage struct {
	// KindOf maps a class label to its stage kind (derived from the
	// partition space layout).
	KindOf func(class int) StageKind
	// CPUClass and GPUClass are the labels emitted for the single-device
	// decisions.
	CPUClass int
	GPUClass int
	// NewGate and NewSplit construct the two underlying models.
	NewGate  NewModel
	NewSplit NewModel

	gate     Classifier
	split    Classifier
	fallback int // split prediction when no mixed training samples exist
}

// NewTwoStage builds a two-stage predictor with the given label geometry.
func NewTwoStage(kindOf func(int) StageKind, cpuClass, gpuClass int, gate, split NewModel) *TwoStage {
	return &TwoStage{
		KindOf:   kindOf,
		CPUClass: cpuClass,
		GPUClass: gpuClass,
		NewGate:  gate,
		NewSplit: split,
	}
}

// Name implements Classifier.
func (m *TwoStage) Name() string { return "twostage" }

// Fit implements Classifier.
func (m *TwoStage) Fit(d *Dataset) error {
	if err := d.Validate(); err != nil {
		return err
	}
	if d.Len() == 0 {
		return fmt.Errorf("ml: empty training set")
	}
	// Stage 1: regime labels.
	gateData := &Dataset{Names: d.Names, X: d.X, Groups: d.Groups}
	gateData.Y = make([]int, d.Len())
	var mixedIdx []int
	for i, y := range d.Y {
		k := m.KindOf(y)
		gateData.Y[i] = int(k)
		if k == StageMixed {
			mixedIdx = append(mixedIdx, i)
		}
	}
	m.gate = m.NewGate()
	if err := m.gate.Fit(gateData); err != nil {
		return err
	}
	// Stage 2: split classifier over mixed samples only.
	if len(mixedIdx) == 0 {
		m.split = nil
		m.fallback = m.CPUClass
		return nil
	}
	splitData := d.Subset(mixedIdx)
	m.split = m.NewSplit()
	if err := m.split.Fit(splitData); err != nil {
		return err
	}
	m.fallback = splitData.Y[0]
	return nil
}

// Predict implements Classifier.
func (m *TwoStage) Predict(x []float64) int {
	s := getScratch()
	y := m.PredictScratch(x, s)
	putScratch(s)
	return y
}

// PredictScratch implements ScratchPredictor: both stages draw from the
// caller's scratch.
func (m *TwoStage) PredictScratch(x []float64, s *Scratch) int {
	switch StageKind(predictScratch(m.gate, x, s)) {
	case StageCPUOnly:
		return m.CPUClass
	case StageGPUOnly:
		return m.GPUClass
	default:
		if m.split == nil {
			return m.fallback
		}
		return predictScratch(m.split, x, s)
	}
}
