package ml

import (
	"fmt"
	"math"
	"math/rand"
)

// MLP is a single-hidden-layer neural network with tanh activations and a
// softmax output, trained with mini-batch gradient descent and momentum.
// This is the model family the Insieme work used for task partitioning
// prediction, and the default model of this reproduction.
type MLP struct {
	Hidden    int
	Epochs    int
	LearnRate float64
	Momentum  float64
	L2        float64
	BatchSize int
	Seed      int64

	w1, w2 [][]float64 // [in+1][hidden], [hidden+1][out]
	in     int
	out    int
}

// NewMLP builds an MLP with sensible defaults for this problem scale.
func NewMLP(hidden int, seed int64) *MLP {
	if hidden <= 0 {
		hidden = 32
	}
	return &MLP{
		Hidden:    hidden,
		Epochs:    400,
		LearnRate: 0.02,
		Momentum:  0.9,
		L2:        1e-4,
		BatchSize: 16,
		Seed:      seed,
	}
}

// Name implements Classifier.
func (m *MLP) Name() string { return fmt.Sprintf("mlp%d", m.Hidden) }

// Fit implements Classifier.
func (m *MLP) Fit(d *Dataset) error {
	if err := d.Validate(); err != nil {
		return err
	}
	if d.Len() == 0 {
		return fmt.Errorf("ml: empty training set")
	}
	m.in = d.Dim()
	m.out = d.NumClasses()
	rng := rand.New(rand.NewSource(m.Seed))

	initMat := func(rows, cols int, scale float64) [][]float64 {
		w := make([][]float64, rows)
		for i := range w {
			w[i] = make([]float64, cols)
			for j := range w[i] {
				w[i][j] = (rng.Float64()*2 - 1) * scale
			}
		}
		return w
	}
	m.w1 = initMat(m.in+1, m.Hidden, math.Sqrt(1/float64(m.in+1)))
	m.w2 = initMat(m.Hidden+1, m.out, math.Sqrt(1/float64(m.Hidden+1)))
	v1 := initMat(m.in+1, m.Hidden, 0)
	v2 := initMat(m.Hidden+1, m.out, 0)

	order := make([]int, d.Len())
	for i := range order {
		order[i] = i
	}
	bs := m.BatchSize
	if bs <= 0 || bs > d.Len() {
		bs = d.Len()
	}
	g1 := initMat(m.in+1, m.Hidden, 0)
	g2 := initMat(m.Hidden+1, m.out, 0)
	hidden := make([]float64, m.Hidden)
	probs := make([]float64, m.out)
	dh := make([]float64, m.Hidden)

	for epoch := 0; epoch < m.Epochs; epoch++ {
		rng.Shuffle(len(order), func(i, j int) { order[i], order[j] = order[j], order[i] })
		lr := m.LearnRate / (1 + 0.01*float64(epoch))
		for start := 0; start < len(order); start += bs {
			end := start + bs
			if end > len(order) {
				end = len(order)
			}
			zero(g1)
			zero(g2)
			for _, s := range order[start:end] {
				x, y := d.X[s], d.Y[s]
				var soft []float64
				if len(d.Soft) > 0 {
					soft = d.Soft[s]
				}
				target := func(k int) float64 {
					if soft != nil {
						return soft[k]
					}
					if k == y {
						return 1
					}
					return 0
				}
				m.forward(x, hidden, probs)
				// Output delta: softmax + cross-entropy gradient against
				// the (hard or cost-sensitive soft) target distribution.
				for k := 0; k < m.out; k++ {
					delta := probs[k] - target(k)
					for h := 0; h < m.Hidden; h++ {
						g2[h][k] += delta * hidden[h]
					}
					g2[m.Hidden][k] += delta // bias
				}
				// Hidden delta through tanh'.
				for h := 0; h < m.Hidden; h++ {
					sum := 0.0
					for k := 0; k < m.out; k++ {
						sum += (probs[k] - target(k)) * m.w2[h][k]
					}
					dh[h] = sum * (1 - hidden[h]*hidden[h])
				}
				for i := 0; i < m.in; i++ {
					xi := x[i]
					if xi == 0 {
						continue
					}
					for h := 0; h < m.Hidden; h++ {
						g1[i][h] += dh[h] * xi
					}
				}
				for h := 0; h < m.Hidden; h++ {
					g1[m.in][h] += dh[h] // bias
				}
			}
			scale := 1.0 / float64(end-start)
			step(m.w1, v1, g1, lr, scale, m.Momentum, m.L2)
			step(m.w2, v2, g2, lr, scale, m.Momentum, m.L2)
		}
	}
	return nil
}

// forward computes hidden activations and output probabilities in place.
func (m *MLP) forward(x []float64, hidden, probs []float64) {
	for h := 0; h < m.Hidden; h++ {
		sum := m.w1[m.in][h]
		for i := 0; i < m.in; i++ {
			sum += m.w1[i][h] * x[i]
		}
		hidden[h] = math.Tanh(sum)
	}
	maxLogit := math.Inf(-1)
	for k := 0; k < m.out; k++ {
		sum := m.w2[m.Hidden][k]
		for h := 0; h < m.Hidden; h++ {
			sum += m.w2[h][k] * hidden[h]
		}
		probs[k] = sum
		if sum > maxLogit {
			maxLogit = sum
		}
	}
	total := 0.0
	for k := range probs {
		probs[k] = math.Exp(probs[k] - maxLogit)
		total += probs[k]
	}
	for k := range probs {
		probs[k] /= total
	}
}

// Predict implements Classifier.
func (m *MLP) Predict(x []float64) int {
	s := getScratch()
	y := m.PredictScratch(x, s)
	putScratch(s)
	return y
}

// PredictScratch implements ScratchPredictor.
func (m *MLP) PredictScratch(x []float64, s *Scratch) int {
	hidden := s.floats(m.Hidden)
	probs := s.floats(m.out)
	m.forward(x, hidden, probs)
	return argmax(probs)
}

// Probabilities returns the softmax class distribution for x.
func (m *MLP) Probabilities(x []float64) []float64 {
	hidden := make([]float64, m.Hidden)
	probs := make([]float64, m.out)
	m.forward(x, hidden, probs)
	return probs
}

func zero(m [][]float64) {
	for i := range m {
		for j := range m[i] {
			m[i][j] = 0
		}
	}
}

// step applies a momentum SGD update with L2 regularization.
func step(w, v, g [][]float64, lr, scale, momentum, l2 float64) {
	for i := range w {
		for j := range w[i] {
			v[i][j] = momentum*v[i][j] - lr*(g[i][j]*scale+l2*w[i][j])
			w[i][j] += v[i][j]
		}
	}
}
