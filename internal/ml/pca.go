package ml

import (
	"fmt"
	"math"
	"math/rand"
)

// PCA is principal component analysis by power iteration with deflation —
// the dimensionality-reduction preprocessing the Insieme work applied to
// feature vectors before model training. Inputs should be standardized
// (see Scaler) first.
type PCA struct {
	// Components holds the principal directions, one row per component.
	Components [][]float64
	// Explained holds the variance captured by each component.
	Explained []float64
	mean      []float64
}

// FitPCA computes the top-k principal components of the dataset's feature
// matrix. k is clamped to the feature dimension. The decomposition is
// deterministic (seeded power iteration).
func FitPCA(d *Dataset, k int, seed int64) (*PCA, error) {
	if err := d.Validate(); err != nil {
		return nil, err
	}
	n, dim := d.Len(), d.Dim()
	if n == 0 {
		return nil, fmt.Errorf("ml: PCA on empty dataset")
	}
	if k <= 0 || k > dim {
		k = dim
	}
	p := &PCA{mean: make([]float64, dim)}
	for _, x := range d.X {
		for j, v := range x {
			p.mean[j] += v
		}
	}
	for j := range p.mean {
		p.mean[j] /= float64(n)
	}
	// Covariance matrix.
	cov := make([][]float64, dim)
	for i := range cov {
		cov[i] = make([]float64, dim)
	}
	for _, x := range d.X {
		for i := 0; i < dim; i++ {
			di := x[i] - p.mean[i]
			for j := i; j < dim; j++ {
				cov[i][j] += di * (x[j] - p.mean[j])
			}
		}
	}
	for i := 0; i < dim; i++ {
		for j := i; j < dim; j++ {
			cov[i][j] /= float64(n)
			cov[j][i] = cov[i][j]
		}
	}
	rng := rand.New(rand.NewSource(seed))
	for c := 0; c < k; c++ {
		vec, val := powerIterate(cov, rng)
		if val < 1e-12 {
			break // remaining variance is numerically zero
		}
		p.Components = append(p.Components, vec)
		p.Explained = append(p.Explained, val)
		// Deflate: cov -= val * vec vec^T.
		for i := 0; i < dim; i++ {
			for j := 0; j < dim; j++ {
				cov[i][j] -= val * vec[i] * vec[j]
			}
		}
	}
	return p, nil
}

// powerIterate finds the dominant eigenpair of a symmetric matrix.
func powerIterate(m [][]float64, rng *rand.Rand) ([]float64, float64) {
	dim := len(m)
	v := make([]float64, dim)
	for i := range v {
		v[i] = rng.Float64() - 0.5
	}
	normalize(v)
	tmp := make([]float64, dim)
	val := 0.0
	for iter := 0; iter < 500; iter++ {
		for i := 0; i < dim; i++ {
			s := 0.0
			for j := 0; j < dim; j++ {
				s += m[i][j] * v[j]
			}
			tmp[i] = s
		}
		newVal := norm(tmp)
		if newVal < 1e-15 {
			return v, 0
		}
		for i := range tmp {
			tmp[i] /= newVal
		}
		delta := 0.0
		for i := range v {
			delta += math.Abs(tmp[i] - v[i])
		}
		copy(v, tmp)
		val = newVal
		if delta < 1e-12 {
			break
		}
	}
	return append([]float64{}, v...), val
}

func norm(v []float64) float64 {
	s := 0.0
	for _, x := range v {
		s += x * x
	}
	return math.Sqrt(s)
}

func normalize(v []float64) {
	n := norm(v)
	if n == 0 {
		return
	}
	for i := range v {
		v[i] /= n
	}
}

// Transform projects one feature vector onto the components.
func (p *PCA) Transform(x []float64) []float64 {
	return p.TransformInto(x, make([]float64, len(p.Components)))
}

// TransformInto projects one feature vector into dst, which must have
// length len(Components), and returns it. The scratch-inference
// counterpart of Transform.
func (p *PCA) TransformInto(x, dst []float64) []float64 {
	for c, comp := range p.Components {
		s := 0.0
		for j, v := range x {
			s += (v - p.mean[j]) * comp[j]
		}
		dst[c] = s
	}
	return dst
}

// TransformDataset projects the whole dataset, renaming features pc0..pcK.
func (p *PCA) TransformDataset(d *Dataset) *Dataset {
	out := &Dataset{Y: append([]int{}, d.Y...), Soft: d.Soft}
	if len(d.Groups) > 0 {
		out.Groups = append([]string{}, d.Groups...)
	}
	for c := range p.Components {
		out.Names = append(out.Names, fmt.Sprintf("pc%d", c))
	}
	for _, x := range d.X {
		out.X = append(out.X, p.Transform(x))
	}
	return out
}

// ExplainedRatio returns the fraction of total captured variance per
// component.
func (p *PCA) ExplainedRatio() []float64 {
	total := 0.0
	for _, e := range p.Explained {
		total += e
	}
	out := make([]float64, len(p.Explained))
	if total == 0 {
		return out
	}
	for i, e := range p.Explained {
		out[i] = e / total
	}
	return out
}
