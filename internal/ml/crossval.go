package ml

import (
	"context"
	"fmt"

	"repro/internal/sched"
)

// FoldResult is the outcome of one leave-one-group-out fold.
type FoldResult struct {
	Group     string
	Predicted []int // per held-out sample
	Actual    []int
	TestIdx   []int // indices into the original dataset
}

// Accuracy returns the exact-label accuracy of the fold.
func (f *FoldResult) Accuracy() float64 {
	if len(f.Actual) == 0 {
		return 0
	}
	hit := 0
	for i := range f.Actual {
		if f.Predicted[i] == f.Actual[i] {
			hit++
		}
	}
	return float64(hit) / float64(len(f.Actual))
}

// CVResult aggregates all folds of a cross validation.
type CVResult struct {
	Folds []FoldResult
}

// Accuracy returns overall exact-label accuracy across folds.
func (r *CVResult) Accuracy() float64 {
	hit, total := 0, 0
	for _, f := range r.Folds {
		for i := range f.Actual {
			total++
			if f.Predicted[i] == f.Actual[i] {
				hit++
			}
		}
	}
	if total == 0 {
		return 0
	}
	return float64(hit) / float64(total)
}

// NewModel constructs a fresh classifier; cross validation needs a new
// model per fold.
type NewModel func() Classifier

// LeaveOneGroupOut runs leave-one-group-out cross validation: each group
// (program) is held out in turn, the model is trained on the remaining
// groups, and predictions are collected for the held-out samples. This is
// the paper's deployment scenario — predicting partitionings for programs
// never seen during training. Feature scaling is fit on each fold's
// training split only (no leakage).
//
// Folds are independent (each trains a freshly constructed, explicitly
// seeded model on its own scaled copy of the data), so they run on the
// scheduler's worker pool; fold results keep group order, making the
// output identical to a sequential sweep.
func LeaveOneGroupOut(d *Dataset, mk NewModel) (*CVResult, error) {
	if err := d.Validate(); err != nil {
		return nil, err
	}
	if len(d.Groups) == 0 {
		return nil, fmt.Errorf("ml: dataset has no group labels")
	}
	groups := d.GroupNames()
	folds, err := sched.Map(context.Background(), len(groups), 0,
		func(_ context.Context, gi int) (FoldResult, error) {
			g := groups[gi]
			trainIdx, testIdx := d.SplitByGroup(g)
			if len(trainIdx) == 0 {
				return FoldResult{}, fmt.Errorf("ml: group %q is the entire dataset", g)
			}
			train := d.Subset(trainIdx)
			scaler := FitScaler(train)
			model := mk()
			if err := model.Fit(scaler.TransformDataset(train)); err != nil {
				return FoldResult{}, fmt.Errorf("ml: fold %q: %w", g, err)
			}
			fold := FoldResult{Group: g, TestIdx: testIdx}
			for _, ti := range testIdx {
				fold.Predicted = append(fold.Predicted, model.Predict(scaler.Transform(d.X[ti])))
				fold.Actual = append(fold.Actual, d.Y[ti])
			}
			return fold, nil
		})
	if err != nil {
		return nil, err
	}
	return &CVResult{Folds: folds}, nil
}

// TrainFull fits a model (with scaling) on the whole dataset and returns a
// predictor closure over raw (unscaled) feature vectors. This is the
// deployment path: the shipped model is trained on the full training DB.
// It is TrainArtifact without the wrapping — one training recipe, so
// artifact-based predictions can never diverge from closure-based ones.
func TrainFull(d *Dataset, mk NewModel) (func(x []float64) int, Classifier, error) {
	a, err := TrainArtifact(d, mk)
	if err != nil {
		return nil, nil, err
	}
	return a.Predict, a.Model, nil
}
