package ml

import (
	"fmt"
	"math/rand"
	"testing"
)

// scratchFamilies returns one fitted artifact per model family, trained
// on the synthetic problem (two-stage uses its regime dataset — its
// label geometry needs the staged structure).
func scratchFamilies(t testing.TB) map[string]*Artifact {
	t.Helper()
	d := synthDataset(200, 3)
	sd := stageDataset(200, 3)
	mk := map[string]struct {
		data *Dataset
		mk   NewModel
	}{
		"knn":      {d, func() Classifier { return NewKNN(5) }},
		"tree":     {d, func() Classifier { return NewTree() }},
		"forest":   {d, func() Classifier { return NewForest(10, 7) }},
		"logreg":   {d, func() Classifier { return NewLogReg(7) }},
		"mlp":      {d, func() Classifier { m := NewMLP(8, 7); m.Epochs = 40; return m }},
		"twostage": {sd, newStageModel},
		"pipeline": {d, func() Classifier { return NewPCAPipeline(3, 7, func() Classifier { return NewKNN(5) }) }},
	}
	out := make(map[string]*Artifact, len(mk))
	for name, c := range mk {
		a, err := TrainArtifact(c.data, c.mk)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		out[name] = a
	}
	return out
}

// randPoints draws n random raw feature vectors of the given dimension.
func randPoints(n, dim int, seed int64) [][]float64 {
	rng := rand.New(rand.NewSource(seed))
	out := make([][]float64, n)
	for i := range out {
		x := make([]float64, dim)
		for j := range x {
			x[j] = rng.NormFloat64() * 3
		}
		out[i] = x
	}
	return out
}

// TestPredictScratchMatchesPredict is the correctness property of the
// scratch API: on random inputs, every family's PredictScratch answers
// exactly what Predict answers — including when one scratch is reused
// across many points, and when the artifact round-trips through
// serialization.
func TestPredictScratchMatchesPredict(t *testing.T) {
	for name, a := range scratchFamilies(t) {
		t.Run(name, func(t *testing.T) {
			var s Scratch
			for i, x := range randPoints(200, len(a.FeatureNames), 11) {
				want := a.Predict(x)
				if got := a.PredictScratch(x, &s); got != want {
					t.Fatalf("point %d: PredictScratch = %d, Predict = %d", i, got, want)
				}
			}
			// A serialized round trip predicts identically through both
			// entry points.
			data, err := a.MarshalJSON()
			if err != nil {
				t.Fatal(err)
			}
			loaded := &Artifact{}
			if err := loaded.UnmarshalJSON(data); err != nil {
				t.Fatal(err)
			}
			for i, x := range randPoints(50, len(a.FeatureNames), 13) {
				want := a.Predict(x)
				if got := loaded.Predict(x); got != want {
					t.Fatalf("point %d: loaded Predict = %d, want %d", i, got, want)
				}
				if got := loaded.PredictScratch(x, &s); got != want {
					t.Fatalf("point %d: loaded PredictScratch = %d, want %d", i, got, want)
				}
			}
		})
	}
}

// TestModelPredictScratchMatchesPredict exercises the bare-classifier
// scratch entry points (no artifact, no scaler) on random inputs.
func TestModelPredictScratchMatchesPredict(t *testing.T) {
	for name, a := range scratchFamilies(t) {
		sp, ok := a.Model.(ScratchPredictor)
		if !ok {
			t.Fatalf("%s does not implement ScratchPredictor", name)
		}
		var s Scratch
		for i, x := range randPoints(100, len(a.FeatureNames), 17) {
			sx := a.Scaler.Transform(x)
			want := a.Model.Predict(sx)
			s.Reset()
			if got := sp.PredictScratch(sx, &s); got != want {
				t.Fatalf("%s point %d: PredictScratch = %d, Predict = %d", name, i, got, want)
			}
		}
	}
}

// TestArtifactPredictZeroAllocs pins the tentpole's acceptance
// criterion: a warm Artifact.Predict performs zero heap allocations for
// every model family, through both the pooled and the caller-scratch
// entry points.
func TestArtifactPredictZeroAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are inflated under the race detector")
	}
	for name, a := range scratchFamilies(t) {
		t.Run(name, func(t *testing.T) {
			x := randPoints(1, len(a.FeatureNames), 19)[0]
			a.Predict(x) // warm the pool and size the buffers
			if avg := testing.AllocsPerRun(200, func() { a.Predict(x) }); avg != 0 {
				t.Errorf("warm Artifact.Predict allocates %.2f/op, want 0", avg)
			}
			var s Scratch
			a.PredictScratch(x, &s)
			if avg := testing.AllocsPerRun(200, func() { a.PredictScratch(x, &s) }); avg != 0 {
				t.Errorf("warm Artifact.PredictScratch allocates %.2f/op, want 0", avg)
			}
		})
	}
}

// TestScratchArenaReuse pins the arena mechanics: buffers are recycled
// across Reset cycles, and composite predictions stack without
// clobbering earlier buffers.
func TestScratchArenaReuse(t *testing.T) {
	var s Scratch
	a := s.floats(4)
	b := s.floats(8)
	if len(a) != 4 || len(b) != 8 {
		t.Fatalf("lens = %d, %d", len(a), len(b))
	}
	copy(a, []float64{1, 2, 3, 4})
	if &b[0] == &a[0] {
		t.Fatal("distinct arena slots alias")
	}
	s.Reset()
	a2 := s.floats(4)
	if &a2[0] != &a[0] {
		t.Fatal("reset did not recycle the first slot")
	}
	// A larger request regrows the slot in place.
	s.Reset()
	big := s.floats(16)
	if len(big) != 16 {
		t.Fatalf("regrown len = %d", len(big))
	}
}

// BenchmarkArtifactPredict tracks warm per-family prediction cost; the
// CI alloc smoke fails the build if any family reports nonzero
// allocs/op here.
func BenchmarkArtifactPredict(b *testing.B) {
	fams := scratchFamilies(b)
	for _, name := range []string{"knn", "tree", "forest", "logreg", "mlp", "twostage", "pipeline"} {
		a, ok := fams[name]
		if !ok {
			b.Fatalf("missing family %s", name)
		}
		b.Run(name, func(b *testing.B) {
			x := randPoints(1, len(a.FeatureNames), 23)[0]
			a.Predict(x)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				a.Predict(x)
			}
		})
	}
}

func ExampleArtifact_PredictScratch() {
	d := synthDataset(100, 1)
	a, err := TrainArtifact(d, func() Classifier { return NewKNN(3) })
	if err != nil {
		panic(err)
	}
	// Batch pricing: one scratch serves many points, zero allocations
	// after the first.
	var s Scratch
	agree := 0
	for _, x := range d.X {
		if a.PredictScratch(x, &s) == a.Predict(x) {
			agree++
		}
	}
	fmt.Println(agree == len(d.X))
	// Output: true
}
