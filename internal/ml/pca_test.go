package ml

import (
	"math"
	"math/rand"
	"testing"
)

// anisotropicData builds samples stretched along a known direction.
func anisotropicData(n int, seed int64) *Dataset {
	rng := rand.New(rand.NewSource(seed))
	d := &Dataset{Names: []string{"a", "b", "c"}}
	// Dominant direction (1,1,0)/sqrt2, minor (0,0,1).
	for i := 0; i < n; i++ {
		t := rng.NormFloat64() * 10
		u := rng.NormFloat64()
		d.X = append(d.X, []float64{
			t/math.Sqrt2 + rng.NormFloat64()*0.01,
			t/math.Sqrt2 + rng.NormFloat64()*0.01,
			u,
		})
		d.Y = append(d.Y, 0)
	}
	return d
}

func TestPCARecoversDominantDirection(t *testing.T) {
	d := anisotropicData(500, 1)
	p, err := FitPCA(d, 2, 7)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Components) != 2 {
		t.Fatalf("got %d components", len(p.Components))
	}
	c0 := p.Components[0]
	// First component should align with (1,1,0)/sqrt2 up to sign.
	dot := math.Abs(c0[0]/math.Sqrt2 + c0[1]/math.Sqrt2)
	if dot < 0.99 {
		t.Errorf("first component %v misaligned with (1,1,0) (|dot| = %.3f)", c0, dot)
	}
	ratios := p.ExplainedRatio()
	if ratios[0] < 0.9 {
		t.Errorf("dominant component explains only %.2f of variance", ratios[0])
	}
}

func TestPCAOrthogonality(t *testing.T) {
	d := synthDataset(300, 2)
	p, err := FitPCA(d, 4, 3)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < len(p.Components); i++ {
		// Unit norm.
		n := 0.0
		for _, v := range p.Components[i] {
			n += v * v
		}
		if math.Abs(n-1) > 1e-6 {
			t.Errorf("component %d norm^2 = %g", i, n)
		}
		for j := i + 1; j < len(p.Components); j++ {
			dot := 0.0
			for k := range p.Components[i] {
				dot += p.Components[i][k] * p.Components[j][k]
			}
			if math.Abs(dot) > 1e-4 {
				t.Errorf("components %d,%d not orthogonal (dot %g)", i, j, dot)
			}
		}
	}
}

func TestPCATransformDataset(t *testing.T) {
	d := synthDataset(100, 3)
	p, err := FitPCA(d, 2, 5)
	if err != nil {
		t.Fatal(err)
	}
	td := p.TransformDataset(d)
	if td.Dim() != 2 {
		t.Fatalf("projected dim %d, want 2", td.Dim())
	}
	if td.Len() != d.Len() {
		t.Error("sample count changed")
	}
	if td.Names[0] != "pc0" || td.Names[1] != "pc1" {
		t.Errorf("names %v", td.Names)
	}
	// Labels preserved.
	for i := range td.Y {
		if td.Y[i] != d.Y[i] {
			t.Fatal("labels lost")
		}
	}
}

func TestPCADeterministic(t *testing.T) {
	d := synthDataset(200, 4)
	p1, _ := FitPCA(d, 3, 9)
	p2, _ := FitPCA(d, 3, 9)
	for i := range p1.Components {
		for j := range p1.Components[i] {
			if p1.Components[i][j] != p2.Components[i][j] {
				t.Fatal("PCA not deterministic")
			}
		}
	}
}

func TestPCAClassifierPipeline(t *testing.T) {
	// Model quality should survive a PCA projection keeping the top
	// components of a standardized dataset.
	d := synthDataset(400, 5)
	sc := FitScaler(d)
	sd := sc.TransformDataset(d)
	p, err := FitPCA(sd, 3, 11)
	if err != nil {
		t.Fatal(err)
	}
	pd := p.TransformDataset(sd)
	m := NewKNN(5)
	if err := m.Fit(pd); err != nil {
		t.Fatal(err)
	}
	hit := 0
	for i, x := range pd.X {
		if m.Predict(x) == pd.Y[i] {
			hit++
		}
	}
	if acc := float64(hit) / float64(pd.Len()); acc < 0.85 {
		t.Errorf("PCA pipeline accuracy %.2f", acc)
	}
}

func TestPCAEmptyErrors(t *testing.T) {
	if _, err := FitPCA(&Dataset{Names: []string{"a"}}, 1, 1); err == nil {
		t.Error("PCA on empty dataset should fail")
	}
}
