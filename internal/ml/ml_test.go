package ml

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// synthDataset builds a separable 3-class problem: class = quadrant-ish
// function of two informative features plus noise dimensions.
func synthDataset(n int, seed int64) *Dataset {
	rng := rand.New(rand.NewSource(seed))
	d := &Dataset{Names: []string{"f0", "f1", "noise0", "noise1"}}
	for i := 0; i < n; i++ {
		x0 := rng.Float64()*4 - 2
		x1 := rng.Float64()*4 - 2
		var y int
		switch {
		case x0 > 0 && x1 > 0:
			y = 0
		case x0 <= 0 && x1 > 0:
			y = 1
		default:
			y = 2
		}
		d.X = append(d.X, []float64{x0, x1, rng.NormFloat64(), rng.NormFloat64()})
		d.Y = append(d.Y, y)
		d.Groups = append(d.Groups, []string{"ga", "gb", "gc", "gd"}[i%4])
	}
	return d
}

func trainAccuracy(t *testing.T, m Classifier, d *Dataset) float64 {
	t.Helper()
	sc := FitScaler(d)
	sd := sc.TransformDataset(d)
	if err := m.Fit(sd); err != nil {
		t.Fatal(err)
	}
	hit := 0
	for i, x := range sd.X {
		if m.Predict(x) == sd.Y[i] {
			hit++
		}
	}
	return float64(hit) / float64(len(sd.X))
}

func TestModelsLearnSeparableProblem(t *testing.T) {
	d := synthDataset(400, 1)
	models := []Classifier{
		NewKNN(5),
		NewTree(),
		NewForest(30, 7),
		NewMLP(16, 7),
		NewLogReg(7),
	}
	for _, m := range models {
		acc := trainAccuracy(t, m, d)
		if acc < 0.9 {
			t.Errorf("%s train accuracy %.2f, want >= 0.9", m.Name(), acc)
		}
	}
}

func TestModelsGeneralize(t *testing.T) {
	train := synthDataset(400, 2)
	test := synthDataset(100, 99)
	for _, mk := range []NewModel{
		func() Classifier { return NewKNN(5) },
		func() Classifier { return NewForest(30, 3) },
		func() Classifier { return NewMLP(16, 3) },
	} {
		sc := FitScaler(train)
		m := mk()
		if err := m.Fit(sc.TransformDataset(train)); err != nil {
			t.Fatal(err)
		}
		hit := 0
		for i, x := range test.X {
			if m.Predict(sc.Transform(x)) == test.Y[i] {
				hit++
			}
		}
		acc := float64(hit) / float64(len(test.X))
		if acc < 0.85 {
			t.Errorf("%s test accuracy %.2f, want >= 0.85", m.Name(), acc)
		}
	}
}

func TestDeterministicTraining(t *testing.T) {
	d := synthDataset(200, 3)
	test := synthDataset(50, 50)
	for _, mk := range []NewModel{
		func() Classifier { return NewForest(20, 11) },
		func() Classifier { return NewMLP(8, 11) },
		func() Classifier { return NewLogReg(11) },
		func() Classifier { return NewTree() },
		func() Classifier { return NewKNN(3) },
	} {
		pred1, _, err := TrainFull(d, mk)
		if err != nil {
			t.Fatal(err)
		}
		pred2, _, err := TrainFull(d, mk)
		if err != nil {
			t.Fatal(err)
		}
		for _, x := range test.X {
			if pred1(x) != pred2(x) {
				t.Fatalf("%s: nondeterministic prediction", mk().Name())
			}
		}
	}
}

func TestLeaveOneGroupOut(t *testing.T) {
	d := synthDataset(400, 4)
	res, err := LeaveOneGroupOut(d, func() Classifier { return NewKNN(5) })
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Folds) != 4 {
		t.Fatalf("got %d folds, want 4", len(res.Folds))
	}
	total := 0
	for _, f := range res.Folds {
		total += len(f.Actual)
		if len(f.Predicted) != len(f.Actual) || len(f.TestIdx) != len(f.Actual) {
			t.Fatal("fold shape mismatch")
		}
	}
	if total != d.Len() {
		t.Errorf("folds cover %d samples, want %d", total, d.Len())
	}
	if acc := res.Accuracy(); acc < 0.85 {
		t.Errorf("LOGO accuracy %.2f, want >= 0.85 on separable data", acc)
	}
}

func TestLeaveOneGroupOutErrors(t *testing.T) {
	d := synthDataset(20, 5)
	d.Groups = nil
	if _, err := LeaveOneGroupOut(d, func() Classifier { return NewKNN(1) }); err == nil {
		t.Error("want error without groups")
	}
	d2 := synthDataset(20, 5)
	for i := range d2.Groups {
		d2.Groups[i] = "only"
	}
	if _, err := LeaveOneGroupOut(d2, func() Classifier { return NewKNN(1) }); err == nil {
		t.Error("want error with a single group")
	}
}

func TestScalerProperties(t *testing.T) {
	d := synthDataset(300, 6)
	sc := FitScaler(d)
	sd := sc.TransformDataset(d)
	dim := d.Dim()
	for j := 0; j < dim; j++ {
		mean, variance := 0.0, 0.0
		for _, x := range sd.X {
			mean += x[j]
		}
		mean /= float64(len(sd.X))
		for _, x := range sd.X {
			variance += (x[j] - mean) * (x[j] - mean)
		}
		variance /= float64(len(sd.X))
		if math.Abs(mean) > 1e-9 {
			t.Errorf("feature %d scaled mean %g, want 0", j, mean)
		}
		if math.Abs(variance-1) > 1e-6 {
			t.Errorf("feature %d scaled variance %g, want 1", j, variance)
		}
	}
}

func TestScalerConstantFeature(t *testing.T) {
	d := &Dataset{
		Names: []string{"c", "v"},
		X:     [][]float64{{5, 1}, {5, 2}, {5, 3}},
		Y:     []int{0, 1, 0},
	}
	sc := FitScaler(d)
	out := sc.Transform([]float64{5, 2})
	if out[0] != 0 {
		t.Errorf("constant feature scaled to %g, want 0", out[0])
	}
	if math.IsNaN(out[1]) {
		t.Error("NaN in scaled output")
	}
}

func TestScalerTransformProperty(t *testing.T) {
	d := synthDataset(100, 8)
	sc := FitScaler(d)
	clamp := func(v float64) float64 {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return 0
		}
		// Keep magnitudes physical; (x-mean)/std with std < 1 overflows
		// near MaxFloat64, which is not a regime feature vectors reach.
		return math.Mod(v, 1e12)
	}
	f := func(a, b, c, e float64) bool {
		x := []float64{clamp(a), clamp(b), clamp(c), clamp(e)}
		y := sc.Transform(x)
		// Invertibility: x == y*std + mean.
		for j := range x {
			back := y[j]*sc.Std[j] + sc.Mean[j]
			if math.Abs(back-x[j]) > 1e-6*(1+math.Abs(x[j])) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestDatasetValidate(t *testing.T) {
	good := synthDataset(10, 9)
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	bad1 := synthDataset(10, 9)
	bad1.Y = bad1.Y[:5]
	if err := bad1.Validate(); err == nil {
		t.Error("mismatched labels validated")
	}
	bad2 := synthDataset(10, 9)
	bad2.X[3] = []float64{1}
	if err := bad2.Validate(); err == nil {
		t.Error("ragged matrix validated")
	}
	bad3 := synthDataset(10, 9)
	bad3.X[0][0] = math.NaN()
	if err := bad3.Validate(); err == nil {
		t.Error("NaN feature validated")
	}
	bad4 := synthDataset(10, 9)
	bad4.Y[0] = -1
	if err := bad4.Validate(); err == nil {
		t.Error("negative label validated")
	}
}

func TestEmptyFitErrors(t *testing.T) {
	empty := &Dataset{Names: []string{"a"}}
	for _, m := range []Classifier{NewKNN(3), NewTree(), NewForest(5, 1), NewMLP(4, 1), NewLogReg(1)} {
		if err := m.Fit(empty); err == nil {
			t.Errorf("%s accepted empty dataset", m.Name())
		}
	}
}

func TestTreeDepthBounded(t *testing.T) {
	d := synthDataset(500, 10)
	tr := NewTree()
	tr.MaxDepth = 3
	sc := FitScaler(d)
	if err := tr.Fit(sc.TransformDataset(d)); err != nil {
		t.Fatal(err)
	}
	if got := tr.Depth(); got > 3 {
		t.Errorf("tree depth %d exceeds MaxDepth 3", got)
	}
}

func TestKNNSingleSample(t *testing.T) {
	d := &Dataset{
		Names: []string{"a"},
		X:     [][]float64{{1.0}},
		Y:     []int{4},
	}
	m := NewKNN(5)
	if err := m.Fit(d); err != nil {
		t.Fatal(err)
	}
	if got := m.Predict([]float64{0.9}); got != 4 {
		t.Errorf("Predict = %d, want 4", got)
	}
}

func TestMLPProbabilitiesSumToOne(t *testing.T) {
	d := synthDataset(200, 12)
	sc := FitScaler(d)
	m := NewMLP(8, 12)
	m.Epochs = 50
	if err := m.Fit(sc.TransformDataset(d)); err != nil {
		t.Fatal(err)
	}
	p := m.Probabilities(sc.Transform(d.X[0]))
	sum := 0.0
	for _, v := range p {
		if v < 0 || v > 1 {
			t.Errorf("probability %g out of range", v)
		}
		sum += v
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Errorf("probabilities sum to %g", sum)
	}
}

func TestMajorityDeterministicTie(t *testing.T) {
	// Equal counts: smaller label wins.
	if got := majority([]int{2, 1, 1, 2}, 3); got != 1 {
		t.Errorf("majority tie = %d, want 1", got)
	}
}

func TestSubsetAndGroups(t *testing.T) {
	d := synthDataset(40, 13)
	sub := d.Subset([]int{0, 2, 4})
	if sub.Len() != 3 {
		t.Fatalf("subset len %d", sub.Len())
	}
	if sub.Groups[1] != d.Groups[2] {
		t.Error("subset lost group alignment")
	}
	names := d.GroupNames()
	if len(names) != 4 {
		t.Errorf("GroupNames = %v", names)
	}
}
