package ml

import "fmt"

// PCAPipeline chains a PCA projection with an inner classifier, fitting
// the projection on each training set (no leakage under cross validation).
type PCAPipeline struct {
	// K is the number of principal components kept (0 = all).
	K int
	// Seed fixes the power-iteration initialization.
	Seed int64
	// NewInner constructs the downstream classifier.
	NewInner NewModel

	pca   *PCA
	inner Classifier
}

// NewPCAPipeline builds the pipeline.
func NewPCAPipeline(k int, seed int64, inner NewModel) *PCAPipeline {
	return &PCAPipeline{K: k, Seed: seed, NewInner: inner}
}

// Name implements Classifier.
func (m *PCAPipeline) Name() string {
	// A deserialized pipeline has no constructor, only the fitted inner
	// model; name whichever is available.
	switch {
	case m.inner != nil:
		return fmt.Sprintf("pca%d+%s", m.K, m.inner.Name())
	case m.NewInner != nil:
		return fmt.Sprintf("pca%d+%s", m.K, m.NewInner().Name())
	default:
		return fmt.Sprintf("pca%d", m.K)
	}
}

// Fit implements Classifier.
func (m *PCAPipeline) Fit(d *Dataset) error {
	pca, err := FitPCA(d, m.K, m.Seed)
	if err != nil {
		return err
	}
	m.pca = pca
	m.inner = m.NewInner()
	return m.inner.Fit(pca.TransformDataset(d))
}

// Predict implements Classifier.
func (m *PCAPipeline) Predict(x []float64) int {
	s := getScratch()
	y := m.PredictScratch(x, s)
	putScratch(s)
	return y
}

// PredictScratch implements ScratchPredictor: the projection lands in an
// arena buffer and the inner model keeps stacking on the same scratch.
func (m *PCAPipeline) PredictScratch(x []float64, s *Scratch) int {
	return predictScratch(m.inner, m.pca.TransformInto(x, s.floats(len(m.pca.Components))), s)
}
