package core

import (
	"testing"

	"repro/internal/device"
	"repro/internal/exec"
	"repro/internal/harness"
	"repro/internal/ml"
)

const triadSrc = `
kernel void triad(global const float* a, global const float* b, global float* c,
                  float s, int n) {
	int i = get_global_id(0);
	if (i < n) {
		c[i] = a[i] + s * b[i];
	}
}`

func smallDB(t *testing.T) *harness.DB {
	t.Helper()
	db, err := harness.Generate(harness.GenOptions{
		Programs:   []string{"vecadd", "matmul", "blackscholes", "mandelbrot"},
		MaxSizeIdx: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	return db
}

func TestCompileSource(t *testing.T) {
	p, err := CompileSource("triad", triadSrc, "")
	if err != nil {
		t.Fatal(err)
	}
	if p.Kernel != "triad" {
		t.Errorf("kernel = %q", p.Kernel)
	}
	if p.Static.GlobalLoads != 2 || p.Static.GlobalStores != 1 {
		t.Errorf("static counts loads/stores = %d/%d", p.Static.GlobalLoads, p.Static.GlobalStores)
	}
	if len(p.Plan.Usages) != 3 {
		t.Errorf("plan has %d buffer usages, want 3", len(p.Plan.Usages))
	}
}

func TestCompileSourceErrors(t *testing.T) {
	if _, err := CompileSource("bad", "kernel void f( {", ""); err == nil {
		t.Error("syntax error accepted")
	}
	if _, err := CompileSource("triad", triadSrc, "nosuch"); err == nil {
		t.Error("unknown kernel accepted")
	}
}

func TestFrameworkEndToEnd(t *testing.T) {
	db := smallDB(t)
	fw, err := New(device.MC2())
	if err != nil {
		t.Fatal(err)
	}
	if fw.Trained() {
		t.Error("untrained framework claims to be trained")
	}
	if err := fw.Train(db, func() ml.Classifier { return ml.NewKNN(5) }); err != nil {
		t.Fatal(err)
	}
	if !fw.Trained() || fw.ModelName() != "knn5" {
		t.Errorf("trained=%t model=%s", fw.Trained(), fw.ModelName())
	}

	// Deploy on a program that was NOT in the training set.
	p, err := CompileSource("triad", triadSrc, "triad")
	if err != nil {
		t.Fatal(err)
	}
	n := 65536
	a, b, c := exec.NewFloatBuffer(n), exec.NewFloatBuffer(n), exec.NewFloatBuffer(n)
	for i := 0; i < n; i++ {
		a.F[i] = float32(i % 100)
		b.F[i] = float32(i % 7)
	}
	spec := LaunchSpec{
		Args: []exec.Arg{exec.BufArg(a), exec.BufArg(b), exec.BufArg(c), exec.FloatArg(2), exec.IntArg(n)},
		ND:   exec.ND1(n),
	}
	rep, err := fw.Run(p, spec)
	if err != nil {
		t.Fatal(err)
	}
	// Correctness of the partitioned execution.
	for i := 0; i < n; i++ {
		want := a.F[i] + 2*b.F[i]
		if c.F[i] != want {
			t.Fatalf("c[%d] = %g, want %g", i, c.F[i], want)
		}
	}
	if rep.Makespan <= 0 || rep.Oracle <= 0 {
		t.Error("empty report")
	}
	if rep.Oracle > rep.Makespan*1.0000001 {
		t.Error("oracle worse than prediction")
	}
	if rep.Makespan > rep.CPUOnly*3 && rep.Makespan > rep.GPUOnly*3 {
		t.Errorf("prediction catastrophically bad: pred %g cpu %g gpu %g",
			rep.Makespan, rep.CPUOnly, rep.GPUOnly)
	}
}

func TestPredictRequiresTraining(t *testing.T) {
	fw, err := New(device.MC1())
	if err != nil {
		t.Fatal(err)
	}
	p, err := CompileSource("triad", triadSrc, "")
	if err != nil {
		t.Fatal(err)
	}
	n := 1024
	spec := LaunchSpec{
		Args: []exec.Arg{
			exec.BufArg(exec.NewFloatBuffer(n)), exec.BufArg(exec.NewFloatBuffer(n)),
			exec.BufArg(exec.NewFloatBuffer(n)), exec.FloatArg(1), exec.IntArg(n)},
		ND: exec.ND1(n),
	}
	if _, _, err := fw.Predict(p, spec); err == nil {
		t.Error("Predict on untrained framework should fail")
	}
	// Features work without training.
	fv, prof, err := fw.Features(p, spec)
	if err != nil {
		t.Fatal(err)
	}
	if len(fv.Values) == 0 || prof.Total().Items != int64(n) {
		t.Error("features/profile malformed")
	}
}

func TestTrainWrongPlatform(t *testing.T) {
	db, err := harness.Generate(harness.GenOptions{
		Programs:   []string{"vecadd"},
		MaxSizeIdx: 1,
		Platforms:  []*device.Platform{device.MC1()},
	})
	if err != nil {
		t.Fatal(err)
	}
	fw, err := New(device.MC2())
	if err != nil {
		t.Fatal(err)
	}
	if err := fw.Train(db, func() ml.Classifier { return ml.NewKNN(3) }); err == nil {
		t.Error("training on a database lacking the platform should fail")
	}
}

func TestUseArtifact(t *testing.T) {
	db := smallDB(t)
	fw, err := New(device.MC2())
	if err != nil {
		t.Fatal(err)
	}
	if err := fw.Train(db, func() ml.Classifier { return ml.NewKNN(5) }); err != nil {
		t.Fatal(err)
	}
	art := fw.Artifact()
	if art == nil || art.Platform != "mc2" || len(art.Space) != 66 {
		t.Fatalf("trained artifact metadata: %+v", art)
	}

	// A fresh framework adopts the artifact without training and
	// predicts identically.
	fw2, err := New(device.MC2())
	if err != nil {
		t.Fatal(err)
	}
	if err := fw2.UseArtifact(art); err != nil {
		t.Fatal(err)
	}
	if !fw2.Trained() || fw2.ModelName() != "knn5" {
		t.Errorf("trained=%t model=%s", fw2.Trained(), fw2.ModelName())
	}
	for _, rec := range db.PlatformRecords("mc2") {
		a, rawA, err := fw.PredictClass(rec.Features)
		if err != nil {
			t.Fatal(err)
		}
		b, rawB, err := fw2.PredictClass(rec.Features)
		if err != nil {
			t.Fatal(err)
		}
		if a != b || rawA != rawB {
			t.Fatalf("%s: trained predicts %d/%d, adopted artifact %d/%d", rec.Program, a, rawA, b, rawB)
		}
	}

	// Incompatible artifacts are rejected.
	fwMC1, err := New(device.MC1())
	if err != nil {
		t.Fatal(err)
	}
	if err := fwMC1.UseArtifact(art); err == nil {
		t.Error("mc2 artifact accepted on mc1 framework")
	}
	bad := *art
	bad.Space = append([]string{}, art.Space...)
	bad.Space[3] = "1/2/3"
	if err := fw2.UseArtifact(&bad); err == nil {
		t.Error("artifact with mismatched class space accepted")
	}
	if err := fw2.UseArtifact(&ml.Artifact{}); err == nil {
		t.Error("artifact without model accepted")
	}
}
