// Package core is the user-facing facade of the framework: the paper's
// primary contribution assembled as a library.
//
// It wires the pipeline together end to end:
//
//	source  --compile-->  INSPIRE IR  --analyze-->  static features
//	                        |                          |
//	                        v                          v
//	                  multi-device plan        +  runtime features
//	                        |                          |
//	                        v                          v
//	                   partitioned run  <--predict--  trained model
//
// A Framework is bound to one platform (mc1 or mc2). Training uses the
// harness database; deployment compiles a (possibly unseen) program,
// collects its features for the requested problem size, predicts the best
// task partitioning, and executes the kernel partitioned across the
// platform's devices.
package core

import (
	"fmt"

	"repro/internal/backend"
	"repro/internal/device"
	"repro/internal/exec"
	"repro/internal/features"
	"repro/internal/harness"
	"repro/internal/inspire"
	"repro/internal/ml"
	"repro/internal/partition"
	"repro/internal/runtime"
)

// Program is a compiled single-device OpenCL (MiniCL) program together
// with everything the framework derived from it: the IR, the static
// features, the multi-device plan and the executable kernel.
type Program struct {
	Name   string
	Kernel string

	Unit     *inspire.Unit
	Compiled *exec.Compiled
	Plan     *backend.Plan
	Static   *inspire.StaticCounts
}

// CompileSource runs the full front-end on MiniCL source. kernel selects
// the kernel function; the empty string picks the first kernel.
func CompileSource(name, src, kernel string) (*Program, error) {
	unit, err := inspire.LowerSource(name, src)
	if err != nil {
		return nil, err
	}
	if kernel == "" {
		kernel = unit.Kernels[0].Name
	}
	fn := unit.Kernel(kernel)
	if fn == nil {
		return nil, fmt.Errorf("core: kernel %q not found in %q", kernel, name)
	}
	inspire.Optimize(unit)
	if err := inspire.Verify(unit); err != nil {
		return nil, fmt.Errorf("core: IR verification: %w", err)
	}
	comp, err := exec.Compile(fn)
	if err != nil {
		return nil, err
	}
	plan, err := backend.Analyze(fn)
	if err != nil {
		return nil, err
	}
	return &Program{
		Name:     name,
		Kernel:   kernel,
		Unit:     unit,
		Compiled: comp,
		Plan:     plan,
		Static:   inspire.Analyze(fn),
	}, nil
}

// LaunchSpec describes one execution of a program at a problem size.
type LaunchSpec struct {
	Args []exec.Arg
	ND   exec.NDRange
	// Iterations is the application's kernel launch count (default 1).
	Iterations int
}

// Framework is the trained partitioning system for one platform.
type Framework struct {
	Platform *device.Platform
	Runtime  *runtime.Runtime

	space     []partition.Partition
	predictor func(x []float64) int
	model     ml.Classifier
}

// New creates an untrained framework for the platform.
func New(plat *device.Platform) (*Framework, error) {
	if err := plat.Validate(); err != nil {
		return nil, err
	}
	return &Framework{
		Platform: plat,
		Runtime:  runtime.New(plat),
		space:    partition.Space(plat.NumDevices(), partition.DefaultSteps),
	}, nil
}

// Train fits the prediction model from a harness database (offline
// training phase). Records for other platforms are ignored.
func (f *Framework) Train(db *harness.DB, mk ml.NewModel) error {
	data := db.Dataset(f.Platform.Name, nil)
	if data.Len() == 0 {
		return fmt.Errorf("core: database has no records for %q", f.Platform.Name)
	}
	pred, model, err := ml.TrainFull(data, mk)
	if err != nil {
		return err
	}
	f.predictor = pred
	f.model = model
	return nil
}

// Trained reports whether a model has been fitted.
func (f *Framework) Trained() bool { return f.predictor != nil }

// ModelName names the fitted model family, or "none".
func (f *Framework) ModelName() string {
	if f.model == nil {
		return "none"
	}
	return f.model.Name()
}

// Features compiles the feature vector for a program at a problem size.
// Collecting the runtime (problem size dependent) features requires one
// profiled execution, mirroring the paper's runtime feature collection;
// the profile is returned for reuse.
func (f *Framework) Features(p *Program, spec LaunchSpec) (features.Vector, *exec.Profile, error) {
	l := f.launch(p, spec)
	prof, err := f.Runtime.Profile(l)
	if err != nil {
		return features.Vector{}, nil, err
	}
	fv := features.Combined(p.Static, features.RuntimeInput{
		Profile:    prof,
		Plan:       p.Plan,
		Args:       spec.Args,
		Iterations: spec.Iterations,
	})
	return fv, prof, nil
}

// Predict returns the model's partitioning for a program at a problem
// size, along with the profile used for feature extraction.
func (f *Framework) Predict(p *Program, spec LaunchSpec) (partition.Partition, *exec.Profile, error) {
	if !f.Trained() {
		return partition.Partition{}, nil, fmt.Errorf("core: framework is not trained")
	}
	fv, prof, err := f.Features(p, spec)
	if err != nil {
		return partition.Partition{}, nil, err
	}
	cls := f.predictor(fv.Values)
	if cls < 0 || cls >= len(f.space) {
		cls = 0
	}
	return f.space[cls], prof, nil
}

// Report summarizes one framework-guided execution.
type Report struct {
	Partition partition.Partition
	// Makespan is the simulated wall time under the predicted partitioning.
	Makespan float64
	// CPUOnly, GPUOnly and Oracle are the reference simulated times.
	CPUOnly float64
	GPUOnly float64
	Oracle  float64
	// OraclePartition is the exhaustive-search optimum.
	OraclePartition partition.Partition
}

// SpeedupVsCPU returns CPUOnly/Makespan.
func (r *Report) SpeedupVsCPU() float64 { return r.CPUOnly / r.Makespan }

// SpeedupVsGPU returns GPUOnly/Makespan.
func (r *Report) SpeedupVsGPU() float64 { return r.GPUOnly / r.Makespan }

// Run executes the program under the model-predicted partitioning
// (deployment phase). Outputs are written to the buffers in spec.Args; the
// report compares the prediction against the default strategies and the
// oracle.
func (f *Framework) Run(p *Program, spec LaunchSpec) (*Report, error) {
	part, prof, err := f.Predict(p, spec)
	if err != nil {
		return nil, err
	}
	l := f.launch(p, spec)
	rep := &Report{Partition: part}
	if rep.Makespan, _, err = f.Runtime.Price(l, prof, part); err != nil {
		return nil, err
	}
	if rep.CPUOnly, _, err = f.Runtime.Price(l, prof, f.Runtime.CPUOnly()); err != nil {
		return nil, err
	}
	if rep.GPUOnly, _, err = f.Runtime.Price(l, prof, f.Runtime.GPUOnly()); err != nil {
		return nil, err
	}
	if rep.OraclePartition, rep.Oracle, err = f.Runtime.Best(l, prof); err != nil {
		return nil, err
	}
	// The profiled execution already produced the program's outputs on
	// the host buffers; re-execute partitioned only to exercise the real
	// multi-device path (semantically identical, asserted by tests).
	if _, err := f.Runtime.Execute(l, part); err != nil {
		return nil, err
	}
	return rep, nil
}

func (f *Framework) launch(p *Program, spec LaunchSpec) runtime.Launch {
	return runtime.Launch{
		Kernel:     p.Compiled,
		Plan:       p.Plan,
		Args:       spec.Args,
		ND:         spec.ND,
		Iterations: spec.Iterations,
	}
}
