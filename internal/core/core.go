// Package core is the user-facing facade of the framework: the paper's
// primary contribution assembled as a library.
//
// It wires the pipeline together end to end:
//
//	source  --compile-->  INSPIRE IR  --analyze-->  static features
//	                        |                          |
//	                        v                          v
//	                  multi-device plan        +  runtime features
//	                        |                          |
//	                        v                          v
//	                   partitioned run  <--predict--  trained model
//
// A Framework is bound to one platform (mc1 or mc2). Training uses the
// harness database; deployment compiles a (possibly unseen) program,
// collects its features for the requested problem size, predicts the best
// task partitioning, and executes the kernel partitioned across the
// platform's devices.
package core

import (
	"fmt"

	"repro/internal/backend"
	"repro/internal/device"
	"repro/internal/exec"
	"repro/internal/features"
	"repro/internal/harness"
	"repro/internal/inspire"
	"repro/internal/ml"
	"repro/internal/partition"
	"repro/internal/runtime"
)

// Program is a compiled single-device OpenCL (MiniCL) program together
// with everything the framework derived from it: the IR, the static
// features, the multi-device plan and the executable kernel.
type Program struct {
	Name   string
	Kernel string

	Unit     *inspire.Unit
	Compiled *exec.Compiled
	Plan     *backend.Plan
	Static   *inspire.StaticCounts
}

// CompileSource runs the full front-end on MiniCL source. kernel selects
// the kernel function; the empty string picks the first kernel.
func CompileSource(name, src, kernel string) (*Program, error) {
	unit, err := inspire.LowerSource(name, src)
	if err != nil {
		return nil, err
	}
	if kernel == "" {
		kernel = unit.Kernels[0].Name
	}
	fn := unit.Kernel(kernel)
	if fn == nil {
		return nil, fmt.Errorf("core: kernel %q not found in %q", kernel, name)
	}
	inspire.Optimize(unit)
	if err := inspire.Verify(unit); err != nil {
		return nil, fmt.Errorf("core: IR verification: %w", err)
	}
	comp, err := exec.Compile(fn)
	if err != nil {
		return nil, err
	}
	plan, err := backend.Analyze(fn)
	if err != nil {
		return nil, err
	}
	return &Program{
		Name:     name,
		Kernel:   kernel,
		Unit:     unit,
		Compiled: comp,
		Plan:     plan,
		Static:   inspire.Analyze(fn),
	}, nil
}

// LaunchSpec describes one execution of a program at a problem size.
type LaunchSpec struct {
	Args []exec.Arg
	ND   exec.NDRange
	// Iterations is the application's kernel launch count (default 1).
	Iterations int
	// Budget, when non-nil, bounds host execution of the launch.
	Budget *exec.Budget
}

// Framework is the trained partitioning system for one platform.
type Framework struct {
	Platform *device.Platform
	Runtime  *runtime.Runtime

	space    []partition.Partition
	artifact *ml.Artifact
}

// New creates an untrained framework for the platform.
func New(plat *device.Platform) (*Framework, error) {
	if err := plat.Validate(); err != nil {
		return nil, err
	}
	return &Framework{
		Platform: plat,
		Runtime:  runtime.New(plat),
		space:    partition.Space(plat.NumDevices(), partition.DefaultSteps),
	}, nil
}

// Train fits the prediction model from a harness database (offline
// training phase). Records for other platforms are ignored. The trained
// model is kept as a serializable artifact (see Artifact) so deployment
// engines can persist it and skip retraining on later runs.
func (f *Framework) Train(db *harness.DB, mk ml.NewModel) error {
	data := db.Dataset(f.Platform.Name, nil)
	if data.Len() == 0 {
		return fmt.Errorf("core: database has no records for %q", f.Platform.Name)
	}
	a, err := ml.TrainArtifact(data, mk)
	if err != nil {
		return err
	}
	a.Platform = f.Platform.Name
	a.Space = append([]string{}, db.Space...)
	// A database whose class space differs from the framework's
	// partition space would train a model whose classes map to the
	// wrong partitions; reject it like any other incompatible artifact.
	if err := f.CheckArtifact(a); err != nil {
		return err
	}
	f.artifact = a
	return nil
}

// Artifact returns the trained model artifact (nil before Train or
// UseArtifact). Save it with ml.SaveArtifact to make training survive the
// process.
func (f *Framework) Artifact() *ml.Artifact { return f.artifact }

// CheckArtifact validates that an artifact can serve predictions on this
// framework's platform: the platform must match and the artifact's class
// space (when recorded) must be exactly the framework's partition space,
// or its class indices would silently map to the wrong partitions. Every
// artifact load path (UseArtifact, the deployment engine) runs this.
func (f *Framework) CheckArtifact(a *ml.Artifact) error {
	if a == nil || a.Model == nil {
		return fmt.Errorf("core: artifact has no model")
	}
	if a.Platform != "" && a.Platform != f.Platform.Name {
		return fmt.Errorf("core: artifact trained for platform %q, framework is %q", a.Platform, f.Platform.Name)
	}
	if len(a.Space) != 0 {
		if len(a.Space) != len(f.space) {
			return fmt.Errorf("core: artifact class space has %d partitions, framework has %d", len(a.Space), len(f.space))
		}
		for i, s := range a.Space {
			if s != f.space[i].String() {
				return fmt.Errorf("core: artifact class %d is partition %q, framework has %q", i, s, f.space[i])
			}
		}
	}
	return nil
}

// UseArtifact installs a previously trained (typically loaded) model
// artifact as the framework's predictor, skipping training entirely.
func (f *Framework) UseArtifact(a *ml.Artifact) error {
	if err := f.CheckArtifact(a); err != nil {
		return err
	}
	f.artifact = a
	return nil
}

// Trained reports whether a model has been fitted.
func (f *Framework) Trained() bool { return f.artifact != nil }

// ModelName names the fitted model family, or "none".
func (f *Framework) ModelName() string {
	if f.artifact == nil {
		return "none"
	}
	return f.artifact.Model.Name()
}

// Features compiles the feature vector for a program at a problem size.
// Collecting the runtime (problem size dependent) features requires one
// profiled execution, mirroring the paper's runtime feature collection;
// the profile is returned for reuse.
func (f *Framework) Features(p *Program, spec LaunchSpec) (features.Vector, *exec.Profile, error) {
	l := f.launch(p, spec)
	prof, err := f.Runtime.Profile(l)
	if err != nil {
		return features.Vector{}, nil, err
	}
	fv := features.Combined(p.Static, features.RuntimeInput{
		Profile:    prof,
		Plan:       p.Plan,
		Args:       spec.Args,
		Iterations: spec.Iterations,
	})
	return fv, prof, nil
}

// PredictClass returns the model's raw class for a feature vector plus
// the in-range class actually served (out-of-range predictions clamp to
// class 0; callers that care inspect raw != served).
func (f *Framework) PredictClass(x []float64) (served, raw int, err error) {
	if !f.Trained() {
		return 0, 0, fmt.Errorf("core: framework is not trained")
	}
	raw = f.artifact.Predict(x)
	served = raw
	if served < 0 || served >= len(f.space) {
		served = 0
	}
	return served, raw, nil
}

// ClassPartition maps a served class index to its partition.
func (f *Framework) ClassPartition(cls int) partition.Partition { return f.space[cls] }

// NumClasses returns the size of the framework's partition space — the
// one source of truth for the valid class range [0, NumClasses).
func (f *Framework) NumClasses() int { return len(f.space) }

// Predict returns the model's partitioning for a program at a problem
// size, along with the profile used for feature extraction.
func (f *Framework) Predict(p *Program, spec LaunchSpec) (partition.Partition, *exec.Profile, error) {
	if !f.Trained() {
		return partition.Partition{}, nil, fmt.Errorf("core: framework is not trained")
	}
	fv, prof, err := f.Features(p, spec)
	if err != nil {
		return partition.Partition{}, nil, err
	}
	cls, _, err := f.PredictClass(fv.Values)
	if err != nil {
		return partition.Partition{}, nil, err
	}
	return f.space[cls], prof, nil
}

// Report summarizes one framework-guided execution.
type Report struct {
	Partition partition.Partition
	// Makespan is the simulated wall time under the predicted partitioning.
	Makespan float64
	// CPUOnly, GPUOnly and Oracle are the reference simulated times.
	CPUOnly float64
	GPUOnly float64
	Oracle  float64
	// OraclePartition is the exhaustive-search optimum.
	OraclePartition partition.Partition
}

// SpeedupVsCPU returns CPUOnly/Makespan.
func (r *Report) SpeedupVsCPU() float64 { return r.CPUOnly / r.Makespan }

// SpeedupVsGPU returns GPUOnly/Makespan.
func (r *Report) SpeedupVsGPU() float64 { return r.GPUOnly / r.Makespan }

// Run executes the program under the model-predicted partitioning
// (deployment phase). Outputs are written to the buffers in spec.Args; the
// report compares the prediction against the default strategies and the
// oracle.
func (f *Framework) Run(p *Program, spec LaunchSpec) (*Report, error) {
	part, prof, err := f.Predict(p, spec)
	if err != nil {
		return nil, err
	}
	l := f.launch(p, spec)
	rep := &Report{Partition: part}
	if rep.Makespan, _, err = f.Runtime.Price(l, prof, part); err != nil {
		return nil, err
	}
	if rep.CPUOnly, _, err = f.Runtime.Price(l, prof, f.Runtime.CPUOnly()); err != nil {
		return nil, err
	}
	if rep.GPUOnly, _, err = f.Runtime.Price(l, prof, f.Runtime.GPUOnly()); err != nil {
		return nil, err
	}
	if rep.OraclePartition, rep.Oracle, err = f.Runtime.Best(l, prof); err != nil {
		return nil, err
	}
	// The profiled execution already produced the program's outputs on
	// the host buffers; re-execute partitioned only to exercise the real
	// multi-device path (semantically identical, asserted by tests).
	if _, err := f.Runtime.Execute(l, part); err != nil {
		return nil, err
	}
	return rep, nil
}

func (f *Framework) launch(p *Program, spec LaunchSpec) runtime.Launch {
	return runtime.Launch{
		Kernel:     p.Compiled,
		Plan:       p.Plan,
		Args:       spec.Args,
		ND:         spec.ND,
		Iterations: spec.Iterations,
		Budget:     spec.Budget,
	}
}
