package backend

import (
	"reflect"
	"testing"

	"repro/internal/exec"
	"repro/internal/inspire"
	"repro/internal/partition"
	"repro/internal/sim"
)

func planFor(t *testing.T, src, kernel string) *Plan {
	t.Helper()
	u, err := inspire.LowerSource("t", src)
	if err != nil {
		t.Fatal(err)
	}
	pl, err := Analyze(u.Kernel(kernel))
	if err != nil {
		t.Fatal(err)
	}
	return pl
}

func usage(t *testing.T, pl *Plan, name string) BufferUsage {
	t.Helper()
	for _, u := range pl.Usages {
		if u.Param.Name == name {
			return u
		}
	}
	t.Fatalf("no usage for buffer %q", name)
	return BufferUsage{}
}

func TestAnalyzeVecadd(t *testing.T) {
	pl := planFor(t, `kernel void vecadd(global const float* a, global const float* b,
		global float* c, int n) {
		int i = get_global_id(0);
		if (i < n) { c[i] = a[i] + b[i]; }
	}`, "vecadd")
	if len(pl.Usages) != 3 {
		t.Fatalf("got %d usages, want 3", len(pl.Usages))
	}
	a, b, c := usage(t, pl, "a"), usage(t, pl, "b"), usage(t, pl, "c")
	if !a.Read || a.Written || !a.Splittable {
		t.Errorf("a: %+v, want read-only splittable", a)
	}
	if !b.Read || b.Written || !b.Splittable {
		t.Errorf("b: %+v, want read-only splittable", b)
	}
	if c.Read || !c.Written || !c.Splittable {
		t.Errorf("c: %+v, want write-only splittable", c)
	}
	if pl.Mix.Coalesced < 0.99 {
		t.Errorf("vecadd mix = %+v, want fully coalesced", pl.Mix)
	}
}

func TestAnalyzeMatmulRowSplit(t *testing.T) {
	pl := planFor(t, `kernel void mm(global const float* a, global const float* b,
		global float* c, int n) {
		int i = get_global_id(0);
		for (int j = 0; j < n; j++) {
			float acc = 0.0;
			for (int k = 0; k < n; k++) {
				acc += a[i*n+k] * b[k*n+j];
			}
			c[i*n+j] = acc;
		}
	}`, "mm")
	a, b, c := usage(t, pl, "a"), usage(t, pl, "b"), usage(t, pl, "c")
	// a is accessed by row (affine in gid): each device needs its rows only.
	if !a.Splittable {
		t.Errorf("a should be splittable (row-block), got %+v", a)
	}
	// b is indexed by loop variables only: every device needs all of b.
	if b.Splittable {
		t.Errorf("b should be replicated (uniform access), got %+v", b)
	}
	if !c.Splittable || !c.Written {
		t.Errorf("c should be written splittable, got %+v", c)
	}
}

func TestAnalyzeIndirectReplicates(t *testing.T) {
	pl := planFor(t, `kernel void gather(global const float* src, global const int* idx,
		global float* dst) {
		int i = get_global_id(0);
		dst[i] = src[idx[i]];
	}`, "gather")
	src := usage(t, pl, "src")
	if src.Splittable {
		t.Errorf("indirectly-addressed src should be replicated: %+v", src)
	}
	if src.ReadPattern != inspire.AccessIndirect {
		t.Errorf("src pattern = %s, want indirect", src.ReadPattern)
	}
	idx := usage(t, pl, "idx")
	if !idx.Splittable {
		t.Errorf("idx is read coalesced and should be splittable: %+v", idx)
	}
}

func TestAnalyzeReadWriteBuffer(t *testing.T) {
	pl := planFor(t, `kernel void inc(global float* x) {
		int i = get_global_id(0);
		x[i] += 1.0;
	}`, "inc")
	x := usage(t, pl, "x")
	if !x.Read || !x.Written {
		t.Errorf("x: %+v, want read+written (compound assign)", x)
	}
}

func TestTransferBytesProportional(t *testing.T) {
	pl := planFor(t, `kernel void vecadd(global const float* a, global const float* b,
		global float* c, int n) {
		int i = get_global_id(0);
		if (i < n) { c[i] = a[i] + b[i]; }
	}`, "vecadd")
	n := 1000
	args := []exec.Arg{
		exec.BufArg(exec.NewFloatBuffer(n)),
		exec.BufArg(exec.NewFloatBuffer(n)),
		exec.BufArg(exec.NewFloatBuffer(n)),
		exec.IntArg(n),
	}
	in, out := pl.TransferBytes(args, n, 0, n)
	if in != 8000 || out != 4000 {
		t.Errorf("full range: in=%d out=%d, want 8000/4000", in, out)
	}
	in, out = pl.TransferBytes(args, n, 0, 500)
	if in != 4000 || out != 2000 {
		t.Errorf("half range: in=%d out=%d, want 4000/2000", in, out)
	}
	in, out = pl.TransferBytes(args, n, 500, 500)
	if in != 0 || out != 0 {
		t.Errorf("empty range: in=%d out=%d, want 0/0", in, out)
	}
}

func TestTransferBytesReplicated(t *testing.T) {
	pl := planFor(t, `kernel void mm(global const float* a, global const float* b,
		global float* c, int n) {
		int i = get_global_id(0);
		for (int j = 0; j < n; j++) {
			float acc = 0.0;
			for (int k = 0; k < n; k++) { acc += a[i*n+k] * b[k*n+j]; }
			c[i*n+j] = acc;
		}
	}`, "mm")
	n := 100
	abuf, bbuf, cbuf := exec.NewFloatBuffer(n*n), exec.NewFloatBuffer(n*n), exec.NewFloatBuffer(n*n)
	args := []exec.Arg{exec.BufArg(abuf), exec.BufArg(bbuf), exec.BufArg(cbuf), exec.IntArg(n)}
	in, out := pl.TransferBytes(args, n, 0, 50)
	// a: half (splittable) = 20000, b: whole = 40000, c out: half = 20000.
	if in != 20000+40000 {
		t.Errorf("in = %d, want 60000", in)
	}
	if out != 20000 {
		t.Errorf("out = %d, want 20000", out)
	}
}

func TestDeviceWorksPartition(t *testing.T) {
	pl := planFor(t, `kernel void vecadd(global const float* a, global const float* b,
		global float* c, int n) {
		int i = get_global_id(0);
		if (i < n) { c[i] = a[i] + b[i]; }
	}`, "vecadd")
	n := 1000
	// Build a synthetic uniform profile: 10 buckets, 100 items each.
	prof := &exec.Profile{Global0: n, Buckets: make([]exec.Counts, 10)}
	for i := range prof.Buckets {
		prof.Buckets[i] = exec.Counts{Items: 100, FloatOps: 100, GlobalLoads: 200, GlobalStores: 100, MaxItemOps: 4}
	}
	args := []exec.Arg{
		exec.BufArg(exec.NewFloatBuffer(n)),
		exec.BufArg(exec.NewFloatBuffer(n)),
		exec.BufArg(exec.NewFloatBuffer(n)),
		exec.IntArg(n),
	}
	part := partition.Partition{Shares: []int{5, 3, 2}}
	works := pl.DeviceWorks(prof, args, part, 1, 1)
	if len(works) != 3 {
		t.Fatalf("got %d works", len(works))
	}
	var items int64
	for _, w := range works {
		items += w.Counts.Items
	}
	if items != 1000 {
		t.Errorf("total items = %d, want 1000", items)
	}
	if works[0].Counts.Items != 500 || works[1].Counts.Items != 300 || works[2].Counts.Items != 200 {
		t.Errorf("item split = %d/%d/%d, want 500/300/200",
			works[0].Counts.Items, works[1].Counts.Items, works[2].Counts.Items)
	}
	if works[0].TransferIn != 4000 {
		t.Errorf("device 0 in = %d, want 4000", works[0].TransferIn)
	}
}

func TestDeviceWorksLaunchScaling(t *testing.T) {
	pl := planFor(t, `kernel void inc(global float* x) {
		x[get_global_id(0)] += 1.0;
	}`, "inc")
	n := 100
	prof := &exec.Profile{Global0: n, Buckets: []exec.Counts{{Items: int64(n), FloatOps: int64(n), GlobalLoads: int64(n), GlobalStores: int64(n), MaxItemOps: 3}}}
	args := []exec.Arg{exec.BufArg(exec.NewFloatBuffer(n))}
	one := pl.DeviceWorks(prof, args, partition.Single(1, 0), 1, 1)
	ten := pl.DeviceWorks(prof, args, partition.Single(1, 0), 1, 10)
	if ten[0].Counts.FloatOps != 10*one[0].Counts.FloatOps {
		t.Errorf("launches did not scale compute: %d vs %d", ten[0].Counts.FloatOps, one[0].Counts.FloatOps)
	}
	if ten[0].TransferIn != one[0].TransferIn {
		t.Errorf("launches scaled transfers: %d vs %d", ten[0].TransferIn, one[0].TransferIn)
	}
	if ten[0].Launches != 10 {
		t.Errorf("Launches = %d, want 10", ten[0].Launches)
	}
}

func TestAnalyzeNilKernel(t *testing.T) {
	if _, err := Analyze(nil); err == nil {
		t.Error("Analyze(nil) should fail")
	}
}

func TestDeviceWorksIntoMatchesDeviceWorks(t *testing.T) {
	pl := planFor(t, `kernel void vecadd(global const float* a, global const float* b,
		global float* c, int n) {
		int i = get_global_id(0);
		if (i < n) { c[i] = a[i] + b[i]; }
	}`, "vecadd")
	n := 1000
	prof := &exec.Profile{Global0: n, Buckets: make([]exec.Counts, 10)}
	for i := range prof.Buckets {
		prof.Buckets[i] = exec.Counts{Items: 100, FloatOps: 100 + int64(i), GlobalLoads: 200, GlobalStores: 100, MaxItemOps: int64(4 + i%3)}
	}
	args := []exec.Arg{
		exec.BufArg(exec.NewFloatBuffer(n)),
		exec.BufArg(exec.NewFloatBuffer(n)),
		exec.BufArg(exec.NewFloatBuffer(n)),
		exec.IntArg(n),
	}
	var works []sim.Work
	var chunks [][2]int
	// Reuse the same scratch across several candidates (the oracle-search
	// pattern): every result must match the allocating path exactly,
	// including stale-state clearing for empty chunks.
	for _, part := range []partition.Partition{
		{Shares: []int{5, 3, 2}},
		{Shares: []int{0, 10, 0}},
		{Shares: []int{7, 0, 3}},
	} {
		want := pl.DeviceWorks(prof, args, part, 64, 3)
		works, chunks = pl.DeviceWorksInto(works, chunks, prof, args, part, 64, 3)
		if !reflect.DeepEqual(works, want) {
			t.Fatalf("partition %s: DeviceWorksInto %+v != DeviceWorks %+v", part, works, want)
		}
	}
}
