// Package backend derives multi-device execution plans from single-device
// kernels: the role of the paper's Insieme backend, which "generates
// multi-device OpenCL code" from the INSPIRE representation.
//
// For each global buffer parameter the backend determines how the kernel
// accesses it relative to the partitioned dimension (dim 0 of the
// NDRange). Buffers accessed affinely in the work-item ID can be split:
// each device only receives/returns its proportional slice. Buffers with
// uniform, indirect or unclassifiable accesses must be replicated to every
// participating device. The resulting transfer plan feeds the timing
// simulator, which — following the paper's methodology — always accounts
// kernel time including transfer overhead.
package backend

import (
	"fmt"

	"repro/internal/exec"
	"repro/internal/inspire"
	"repro/internal/minicl"
	"repro/internal/partition"
	"repro/internal/sim"
)

// BufferUsage describes how a kernel uses one global buffer parameter.
type BufferUsage struct {
	Param   *inspire.Var
	Read    bool
	Written bool
	// ReadPattern and WritePattern are the worst observed access patterns
	// for the respective direction.
	ReadPattern  inspire.AccessPattern
	WritePattern inspire.AccessPattern
	// Splittable means a partition chunk only needs a proportional slice
	// of this buffer (affine access in the partition dimension).
	Splittable bool
}

// Plan is the multi-device execution plan for one kernel: per-buffer usage
// plus the kernel's aggregate static access mix.
type Plan struct {
	Kernel *inspire.Function
	Usages []BufferUsage
	Static *inspire.StaticCounts
	Mix    sim.AccessMix
}

// worse returns the less split-friendly of two patterns.
func worse(a, b inspire.AccessPattern) inspire.AccessPattern {
	if splitRank(a) >= splitRank(b) {
		return a
	}
	return b
}

// splitRank orders patterns by how hostile they are to buffer splitting.
func splitRank(p inspire.AccessPattern) int {
	switch p {
	case inspire.AccessCoalesced:
		return 0
	case inspire.AccessStrided:
		return 1
	case inspire.AccessUniform:
		return 2
	case inspire.AccessIndirect:
		return 3
	default:
		return 4
	}
}

// splittable reports whether a pattern allows proportional buffer slicing
// along the partition dimension. Affine accesses (coalesced or strided in
// the work-item ID) cover index ranges proportional to the chunk.
func splittable(p inspire.AccessPattern) bool {
	return p == inspire.AccessCoalesced || p == inspire.AccessStrided
}

// Analyze builds the multi-device plan for a kernel.
func Analyze(fn *inspire.Function) (*Plan, error) {
	if fn == nil {
		return nil, fmt.Errorf("backend: nil kernel")
	}
	pl := &Plan{Kernel: fn, Static: inspire.Analyze(fn)}

	usageByVar := map[*inspire.Var]*BufferUsage{}
	for _, p := range fn.Params {
		if p.Type.Ptr && p.Type.Space == minicl.Global {
			u := &BufferUsage{Param: p, ReadPattern: inspire.AccessUniform, WritePattern: inspire.AccessUniform}
			usageByVar[p] = u
		}
	}

	env := inspire.BuildAffineEnv(fn)
	inspire.WalkStmts(fn.Body, func(s inspire.Stmt) bool {
		if se, ok := s.(*inspire.StoreElem); ok {
			if u := usageByVar[se.Buf]; u != nil {
				pat := inspire.ClassifyIndexEnv(se.Index, env)
				if !u.Written {
					u.WritePattern = pat
				} else {
					u.WritePattern = worse(u.WritePattern, pat)
				}
				u.Written = true
			}
		}
		return true
	})
	inspire.WalkExprs(fn.Body, func(e inspire.Expr) {
		if ld, ok := e.(*inspire.Load); ok {
			if u := usageByVar[ld.Buf]; u != nil {
				pat := inspire.ClassifyIndexEnv(ld.Index, env)
				if !u.Read {
					u.ReadPattern = pat
				} else {
					u.ReadPattern = worse(u.ReadPattern, pat)
				}
				u.Read = true
			}
		}
	})

	for _, p := range fn.Params {
		if u := usageByVar[p]; u != nil {
			u.Splittable = true
			if u.Read && !splittable(u.ReadPattern) {
				u.Splittable = false
			}
			if u.Written && !splittable(u.WritePattern) {
				u.Splittable = false
			}
			if !u.Read && !u.Written {
				u.Splittable = true // untouched buffer: no transfers at all
			}
			pl.Usages = append(pl.Usages, *u)
		}
	}

	pl.Mix = MixOf(pl.Static)
	return pl, nil
}

// MixOf converts a static access histogram into the simulator's mix.
func MixOf(st *inspire.StaticCounts) sim.AccessMix {
	var m sim.AccessMix
	for pat, n := range st.Accesses {
		f := float64(n)
		switch pat {
		case inspire.AccessCoalesced:
			m.Coalesced += f
		case inspire.AccessStrided:
			m.Strided += f
		case inspire.AccessIndirect:
			m.Indirect += f
		case inspire.AccessUniform:
			m.Uniform += f
		default:
			m.Indirect += f // price unknown like gather
		}
	}
	return m.Normalize()
}

// TransferBytes computes host->device and device->host traffic for
// executing dim-0 chunk [lo,hi) of a launch with the given arguments.
// global0 is the full dim-0 extent. Buffers not used by the kernel move
// nothing; splittable buffers move their proportional slice; everything
// else is replicated in full (and written back in full if written).
func (pl *Plan) TransferBytes(args []exec.Arg, global0, lo, hi int) (in, out int64) {
	if hi <= lo || global0 <= 0 {
		return 0, 0
	}
	frac := float64(hi-lo) / float64(global0)
	ui := 0
	for i, p := range pl.Kernel.Params {
		if !p.Type.Ptr || p.Type.Space != minicl.Global {
			continue
		}
		u := pl.Usages[ui]
		ui++
		if args[i].Buf == nil {
			continue
		}
		bytes := args[i].Buf.Bytes()
		prop := int64(float64(bytes) * frac)
		if u.Read {
			if u.Splittable {
				in += prop
			} else {
				in += bytes
			}
		}
		if u.Written {
			if u.Splittable {
				out += prop
			} else {
				out += bytes
			}
			// Partially-written replicated buffers must also be uploaded
			// so untouched regions survive the writeback merge.
			if !u.Splittable && !u.Read {
				in += bytes
			}
		}
	}
	return in, out
}

// DeviceWorks builds the per-device sim.Work vector for a partitioned
// launch: chunk profiles from a full-range profile, transfer bytes from
// the plan, and the kernel's access mix. launches is the number of kernel
// invocations the work represents (iterative applications re-launch the
// kernel but keep buffers resident, so transfers are charged once).
func (pl *Plan) DeviceWorks(prof *exec.Profile, args []exec.Arg, part partition.Partition,
	align int, launches int) []sim.Work {
	works, _ := pl.DeviceWorksInto(nil, nil, prof, args, part, align, launches)
	return works
}

// DeviceWorksInto is DeviceWorks with caller-supplied storage: dst receives
// the works and chunkScratch the chunk layout, both reused when their
// capacity suffices. The chunk counts come from the profile's O(1) range
// query; every computed value is identical to DeviceWorks'. It returns the
// works plus the chunk scratch for reuse on the next candidate.
func (pl *Plan) DeviceWorksInto(dst []sim.Work, chunkScratch [][2]int, prof *exec.Profile,
	args []exec.Arg, part partition.Partition, align int, launches int) ([]sim.Work, [][2]int) {
	chunks := part.ChunksInto(chunkScratch, prof.Global0, align)
	var works []sim.Work
	if cap(dst) >= len(chunks) {
		works = dst[:len(chunks)]
		clear(works)
	} else {
		works = make([]sim.Work, len(chunks))
	}
	for d, ch := range chunks {
		if ch[1] <= ch[0] {
			continue
		}
		counts := prof.Range(ch[0], ch[1])
		scaleCounts(&counts, launches)
		in, outB := pl.TransferBytes(args, prof.Global0, ch[0], ch[1])
		works[d] = sim.Work{
			Counts:      counts,
			Mix:         pl.Mix,
			TransferIn:  in,
			TransferOut: outB,
			Launches:    launches,
		}
	}
	return works, chunks
}

// scaleCounts multiplies dynamic counts by the launch count (profiles are
// captured for one representative launch of iterative kernels).
func scaleCounts(c *exec.Counts, launches int) {
	if launches <= 1 {
		return
	}
	l := int64(launches)
	c.IntOps *= l
	c.FloatOps *= l
	c.TransOps *= l
	c.OtherBuiltins *= l
	c.GlobalLoads *= l
	c.GlobalStores *= l
	c.LocalOps *= l
	c.Branches *= l
	c.Barriers *= l
	c.MaxItemOps *= l
}
