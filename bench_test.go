// Package repro's top-level benchmarks regenerate every figure and table
// of the evaluation (see DESIGN.md section 5 for the experiment index):
//
//	BenchmarkFigure1            — the paper's Figure 1 (per platform)
//	BenchmarkDefaultsAsymmetry  — T2: CPU-only vs GPU-only per platform
//	BenchmarkSizeSensitivity    — T3: oracle partitioning vs problem size
//	BenchmarkModelComparison    — T4: model families under LOPO CV
//	BenchmarkFeatureAblation    — T5: static vs runtime vs combined features
//	BenchmarkOracleGap          — T6: partitioning headroom vs best single device
//	BenchmarkStepAblation       — T7: partition grid step size
//
// Key result values are attached as custom benchmark metrics (geomean
// speedups, oracle efficiency), so `go test -bench .` both regenerates and
// summarizes the experiments. The full pretty-printed tables come from
// `go run ./cmd/bench all`.
//
// The shared training database is generated once per process at reduced
// problem sizes (S0-S3) to keep benchmark runs fast; cmd/train builds the
// full-size database.
package repro

import (
	"os"
	"sync"
	"testing"

	"repro/internal/bench"
	"repro/internal/device"
	"repro/internal/exec"
	"repro/internal/exec/vm"
	"repro/internal/harness"
	"repro/internal/inspire"
	"repro/internal/ml"
	"repro/internal/partition"
	"repro/internal/runtime"
)

var (
	dbOnce  sync.Once
	dbCache *harness.DB
	dbErr   error
)

func benchDB(b *testing.B) *harness.DB {
	b.Helper()
	dbOnce.Do(func() {
		dbCache, dbErr = harness.Generate(harness.GenOptions{MaxSizeIdx: 3})
	})
	if dbErr != nil {
		b.Fatal(dbErr)
	}
	return dbCache
}

// BenchmarkFigure1 regenerates Figure 1: leave-one-program-out prediction
// for all 23 programs, speedups vs the CPU-only and GPU-only defaults.
func BenchmarkFigure1(b *testing.B) {
	for _, plat := range []string{"mc1", "mc2"} {
		b.Run(plat, func(b *testing.B) {
			db := benchDB(b)
			var res *harness.Fig1Result
			var err error
			for i := 0; i < b.N; i++ {
				res, err = harness.Figure1(db, plat, harness.DefaultModel())
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(res.GeoMeanVsCPU, "speedup-vs-cpu")
			b.ReportMetric(res.GeoMeanVsGPU, "speedup-vs-gpu")
			b.ReportMetric(res.MeanOracleEff, "oracle-eff")
		})
	}
}

// BenchmarkDefaultsAsymmetry regenerates T2.
func BenchmarkDefaultsAsymmetry(b *testing.B) {
	db := benchDB(b)
	var rows []harness.DefaultsRow
	for i := 0; i < b.N; i++ {
		rows = harness.DefaultsAsymmetry(db, []string{"mc1", "mc2"})
	}
	b.ReportMetric(float64(rows[0].CPUWins), "mc1-cpu-wins")
	b.ReportMetric(float64(rows[1].GPUWins), "mc2-gpu-wins")
}

// BenchmarkSizeSensitivity regenerates T3.
func BenchmarkSizeSensitivity(b *testing.B) {
	db := benchDB(b)
	progs := []string{"vecadd", "matmul", "blackscholes", "mandelbrot", "spmv", "nbody"}
	var changed float64
	for i := 0; i < b.N; i++ {
		changed = 0
		for _, plat := range []string{"mc1", "mc2"} {
			rows, err := harness.SizeSensitivity(db, plat, progs)
			if err != nil {
				b.Fatal(err)
			}
			for _, r := range rows {
				for j := 1; j < len(r.PerSize); j++ {
					if r.PerSize[j] != r.PerSize[0] {
						changed++
						break
					}
				}
			}
		}
	}
	b.ReportMetric(changed, "size-dependent-programs")
}

// BenchmarkModelComparison regenerates T4 with all five model families.
func BenchmarkModelComparison(b *testing.B) {
	db := benchDB(b)
	models := map[string]ml.NewModel{
		"knn5":   func() ml.Classifier { return ml.NewKNN(5) },
		"dtree":  func() ml.Classifier { return ml.NewTree() },
		"forest": func() ml.Classifier { return ml.NewForest(30, 42) },
		"logreg": func() ml.Classifier { return ml.NewLogReg(42) },
		"mlp":    func() ml.Classifier { return ml.NewMLP(32, 42) },
	}
	for i := 0; i < b.N; i++ {
		rows, err := harness.CompareModels(db, "mc2", models)
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			for _, r := range rows {
				b.ReportMetric(r.OracleEff, r.Model+"-oracle-eff")
			}
		}
	}
}

// BenchmarkFeatureAblation regenerates T5.
func BenchmarkFeatureAblation(b *testing.B) {
	db := benchDB(b)
	for i := 0; i < b.N; i++ {
		rows, err := harness.FeatureAblation(db, "mc2", harness.FastModel())
		if err != nil {
			b.Fatal(err)
		}
		if i == b.N-1 {
			for _, r := range rows {
				b.ReportMetric(r.OracleEff, r.Features+"-eff")
			}
		}
	}
}

// BenchmarkOracleGap regenerates T6.
func BenchmarkOracleGap(b *testing.B) {
	db := benchDB(b)
	var rows []harness.OracleGapRow
	for i := 0; i < b.N; i++ {
		rows = rows[:0]
		for _, plat := range []string{"mc1", "mc2"} {
			rows = append(rows, harness.OracleGap(db, plat))
		}
	}
	b.ReportMetric(rows[0].MeanOracleVsBestSingle, "mc1-headroom")
	b.ReportMetric(rows[1].MeanOracleVsBestSingle, "mc2-headroom")
}

// BenchmarkDynamicScheduler regenerates T8: the StarPU-style dynamic
// chunk scheduler against the static oracle.
func BenchmarkDynamicScheduler(b *testing.B) {
	var rows []harness.DynamicRow
	var err error
	for i := 0; i < b.N; i++ {
		rows, err = harness.DynamicComparison("mc2",
			[]string{"vecadd", "matmul", "blackscholes", "mandelbrot"}, 20)
		if err != nil {
			b.Fatal(err)
		}
	}
	dyn, def := harness.DynamicGeoMeans(rows)
	b.ReportMetric(dyn, "dynamic-vs-oracle")
	b.ReportMetric(def, "best-default-vs-oracle")
}

// BenchmarkStepAblation regenerates T7 (live re-pricing, not DB-based).
func BenchmarkStepAblation(b *testing.B) {
	var rows []harness.StepRow
	var err error
	for i := 0; i < b.N; i++ {
		rows, err = harness.StepAblation("mc2", []string{"vecadd", "matmul"}, []int{2, 4, 10, 20})
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(len(rows)), "rows")
}

// --- component micro-benchmarks ---

// BenchmarkCompileKernel measures the full front-end (parse, check, lower,
// verify, closure-compile, plan) on a representative kernel.
func BenchmarkCompileKernel(b *testing.B) {
	p, err := bench.Get("blackscholes")
	if err != nil {
		b.Fatal(err)
	}
	src, kn := p.Source, p.Kernel
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := compileAll(src, kn); err != nil {
			b.Fatal(err)
		}
	}
}

func compileAll(src, kernel string) (*exec.Compiled, error) {
	u, err := inspire.LowerSource("bench", src)
	if err != nil {
		return nil, err
	}
	return exec.Compile(u.Kernel(kernel))
}

// BenchmarkKernelExecution measures interpreter throughput on vecadd.
func BenchmarkKernelExecution(b *testing.B) {
	p, err := bench.Get("vecadd")
	if err != nil {
		b.Fatal(err)
	}
	l, _, err := p.Build(2) // 128K items
	if err != nil {
		b.Fatal(err)
	}
	rt := runtime.New(device.MC2())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := rt.Profile(l); err != nil {
			b.Fatal(err)
		}
	}
	b.SetBytes(int64(p.Sizes[2].N) * 12) // 2 loads + 1 store per item
}

// BenchmarkPartitionPricing measures pricing the full 66-candidate space
// from one profile (the training inner loop).
func BenchmarkPartitionPricing(b *testing.B) {
	p, err := bench.Get("matmul")
	if err != nil {
		b.Fatal(err)
	}
	l, _, err := p.Build(2)
	if err != nil {
		b.Fatal(err)
	}
	rt := runtime.New(device.MC1())
	prof, err := rt.Profile(l)
	if err != nil {
		b.Fatal(err)
	}
	space := partition.Space(3, partition.DefaultSteps)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, part := range space {
			if _, _, err := rt.Price(l, prof, part); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// --- sequential vs parallel scheduling-core benchmarks ---
//
// Each pair runs the same hot path with Workers=1 (fully sequential: one
// worker at every level, including inside kernel execution) and Workers=0
// (the scheduler's full worker budget). Both produce identical results;
// the ratio of their ns/op is the end-to-end speedup the concurrent
// scheduling core delivers on this machine.

// BenchmarkOracleSearch measures the exhaustive oracle search over the
// partition space — the training phase's hot path. "fine" uses a 5%-step
// grid (231 candidates) to show how the gap widens with search-space size.
func BenchmarkOracleSearch(b *testing.B) {
	p, err := bench.Get("matmul")
	if err != nil {
		b.Fatal(err)
	}
	l, _, err := p.Build(2)
	if err != nil {
		b.Fatal(err)
	}
	rt := runtime.New(device.MC1())
	prof, err := rt.Profile(l)
	if err != nil {
		b.Fatal(err)
	}
	fineSpace := partition.Space(3, 20)
	for _, cfg := range []struct {
		name    string
		workers int
	}{{"sequential", 1}, {"parallel", 0}} {
		b.Run(cfg.name, func(b *testing.B) {
			rt := runtime.New(device.MC1())
			rt.Workers = cfg.workers
			for i := 0; i < b.N; i++ {
				if _, _, err := rt.Best(l, prof); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(cfg.name+"-fine", func(b *testing.B) {
			rt := runtime.New(device.MC1())
			rt.Workers = cfg.workers
			for i := 0; i < b.N; i++ {
				if _, _, err := rt.BestIn(l, prof, fineSpace); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkChunkedExecution measures a partitioned execution whose
// per-device chunks run in dedicated workers.
func BenchmarkChunkedExecution(b *testing.B) {
	p, err := bench.Get("nbody")
	if err != nil {
		b.Fatal(err)
	}
	part := partition.Partition{Shares: []int{4, 3, 3}}
	for _, cfg := range []struct {
		name    string
		workers int
	}{{"sequential", 1}, {"parallel", 0}} {
		b.Run(cfg.name, func(b *testing.B) {
			rt := runtime.New(device.MC2())
			rt.Workers = cfg.workers
			for i := 0; i < b.N; i++ {
				l, _, err := p.Build(1)
				if err != nil {
					b.Fatal(err)
				}
				if _, err := rt.Execute(l, part); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkTrainingSweep measures training-database generation — the full
// profile-and-price pipeline fanned out over (program, size) cells. A
// fresh profile cache per iteration keeps every kernel execution inside
// the measurement.
func BenchmarkTrainingSweep(b *testing.B) {
	progs := []string{"vecadd", "matmul", "blackscholes", "mandelbrot", "spmv", "nbody"}
	for _, cfg := range []struct {
		name    string
		workers int
	}{{"sequential", 1}, {"parallel", 0}} {
		b.Run(cfg.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				_, err := harness.Generate(harness.GenOptions{
					Programs:   progs,
					MaxSizeIdx: 2,
					Workers:    cfg.workers,
					Cache:      harness.NewProfileCache(),
				})
				if err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- pricing and barrier-execution micro-benchmarks ---

// BenchmarkPricePartition measures aggregating the three device chunks of
// one candidate partitioning from a profile — the innermost operation of
// oracle labeling — with the O(buckets) naive scan ("naive") and the O(1)
// prefix-indexed query ("prefix"). The ratio is the per-candidate pricing
// speedup of the prefix index.
func BenchmarkPricePartition(b *testing.B) {
	p, err := bench.Get("matmul")
	if err != nil {
		b.Fatal(err)
	}
	l, _, err := p.Build(2)
	if err != nil {
		b.Fatal(err)
	}
	rt := runtime.New(device.MC1())
	prof, err := rt.Profile(l)
	if err != nil {
		b.Fatal(err)
	}
	nd, err := l.ND.Normalized()
	if err != nil {
		b.Fatal(err)
	}
	part := partition.Partition{Shares: []int{4, 3, 3}}
	chunks := part.Chunks(prof.Global0, nd.Local[0])
	prof.Precompute()
	b.Run("naive", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			for _, ch := range chunks {
				_ = prof.RangeNaive(ch[0], ch[1])
			}
		}
	})
	b.Run("prefix", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			for _, ch := range chunks {
				_ = prof.Range(ch[0], ch[1])
			}
		}
	})
	// Full candidate pricing (chunk layout + transfers + device models)
	// through the production path, for the end-to-end per-candidate cost.
	b.Run("price", func(b *testing.B) {
		b.ReportAllocs()
		space := []partition.Partition{part}
		times := make([]float64, 1)
		for i := 0; i < b.N; i++ {
			if _, err := rt.PriceAll(l, prof, space, times); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkBarrierKernel measures a barrier-synchronized kernel (dotprod:
// 64-item work groups, one barrier per reduction level) under the three
// barrier execution paths: the legacy goroutine-per-item-per-group path
// ("spawn"), the persistent reused item pool ("pooled"), and the default
// single-goroutine lockstep executor ("lockstep"). All three produce
// byte-identical buffers and profiles; the spawn/lockstep ratio is the
// barrier-execution speedup of this PR.
func BenchmarkBarrierKernel(b *testing.B) {
	p, err := bench.Get("dotprod")
	if err != nil {
		b.Fatal(err)
	}
	l, _, err := p.Build(2) // 64K items = 1024 groups of 64
	if err != nil {
		b.Fatal(err)
	}
	nd, err := l.ND.Normalized()
	if err != nil {
		b.Fatal(err)
	}
	if !l.Kernel.LockstepEligible() {
		b.Fatal("dotprod should be lockstep-eligible")
	}
	for _, cfg := range []struct {
		name string
		mode exec.BarrierMode
	}{{"spawn", exec.BarrierSpawn}, {"pooled", exec.BarrierPooled}, {"lockstep", exec.BarrierAuto}} {
		b.Run(cfg.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				_, err := l.Kernel.Run(l.Args, nd, exec.RunOptions{Barrier: cfg.mode})
				if err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkModelTraining measures fitting the default MLP on the database.
func BenchmarkModelTraining(b *testing.B) {
	db := benchDB(b)
	data := db.Dataset("mc2", nil)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := ml.TrainFull(data, harness.DefaultModel()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPrediction measures one deployment-time prediction (scaling +
// MLP forward pass).
func BenchmarkPrediction(b *testing.B) {
	db := benchDB(b)
	data := db.Dataset("mc2", nil)
	pred, _, err := ml.TrainFull(data, harness.DefaultModel())
	if err != nil {
		b.Fatal(err)
	}
	x := data.X[0]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pred(x)
	}
}

// benchTierSet holds one kernel compiled on every execution tier. The
// vec compiles are nil when the kernel is not vectorizable; vecV1 is
// the vector tier with scalarization and re-convergence disabled
// (REPRO_VEC_V1), the apples-to-apples baseline for the v2 paths.
type benchTierSet struct {
	closure, vm, vec, vecV1 *exec.Compiled
}

func benchCompileTierSet(b *testing.B, source, kernel string) benchTierSet {
	b.Helper()
	compile := func(tier exec.Tier) *exec.Compiled {
		u, err := inspire.LowerSource("bench", source)
		if err != nil {
			b.Fatal(err)
		}
		inspire.Optimize(u)
		c, err := exec.CompileTier(u.Kernel(kernel), tier)
		if err != nil {
			if tier == exec.TierVec {
				return nil
			}
			b.Fatal(err)
		}
		return c
	}
	ts := benchTierSet{
		closure: compile(exec.TierClosure),
		vm:      compile(exec.TierVM),
		vec:     compile(exec.TierVec),
	}
	if ts.vec != nil {
		os.Setenv("REPRO_VEC_V1", "1")
		ts.vecV1 = compile(exec.TierVec)
		os.Unsetenv("REPRO_VEC_V1")
	}
	return ts
}

func (ts benchTierSet) legs() []struct {
	name string
	c    *exec.Compiled
} {
	return []struct {
		name string
		c    *exec.Compiled
	}{{"closure", ts.closure}, {"vm", ts.vm}, {"vec", ts.vec}, {"vecv1", ts.vecV1}}
}

// benchMicroKernels stress the vector tier's v2 execution paths with
// shapes the suite programs mix together. "divergent" splits every
// group at a per-item sign branch and then runs a long convergent
// tail loop: v1 bails each group to the scalar VM at the branch and
// grinds the tail item-by-item, v2 runs the sides masked, re-forms at
// the join, and retires the tail W-wide — this is the kernel that
// previously finished scalar and now beats the scalar VM outright.
// "uniformloop" spends its time in a loop whose counter, bound, loads,
// and accumulator are all group-uniform: v2 retires the whole loop once
// per group on the scalar slots instead of once per lane.
var benchMicroKernels = []struct {
	name   string
	source string
	n      int
	fill   func(i int) float32
}{
	{
		name: "divergent",
		source: `kernel void k(global float* a, global float* out, int n) {
			int i = get_global_id(0);
			float x = a[i];
			float r;
			if (x > 0.0f) {
				r = sqrt(x);
			} else {
				r = fabs(x) * 0.75f;
			}
			float acc = r;
			for (int j = 0; j < 96; j = j + 1) {
				acc = acc + a[j] * 0.25f + r * 0.125f;
			}
			out[i] = acc;
		}`,
		n:    8192,
		fill: func(i int) float32 { return float32(1-2*(i%2)) * (0.5 + float32(i%5)*0.25) },
	},
	{
		name: "uniformloop",
		source: `kernel void k(global float* a, global float* out, int n) {
			int i = get_global_id(0);
			float acc = 0.0f;
			for (int j = 0; j < 256; j = j + 1) {
				acc = acc + a[j] * 0.5f;
			}
			out[i] = acc + (float)i;
		}`,
		n:    4096,
		fill: func(i int) float32 { return float32(i%97) * 0.01 },
	},
}

// BenchmarkKernelExec compares the execution tiers on one host worker:
// closure tree, scalar bytecode VM, the SIMT vector tier, and the
// vector tier with v2 disabled (vecv1). matvec, matmul, and nbody are
// the counted-loop kernels where fusion, lane batching, and uniform
// scalarization bite hardest; blackscholes diverges at its
// data-dependent cnd branch (v1 completes scalar, v2 re-converges);
// mandelbrot has per-item loop trip counts and is not vectorizable, so
// its vec sub-benchmarks are skipped. The divergent and uniformloop
// microkernels isolate the re-convergence and scalarization paths. All
// tiers produce byte-identical buffers and profiles (see
// vmdiff_test.go).
func BenchmarkKernelExec(b *testing.B) {
	run := func(name string, ts benchTierSet, args []exec.Arg, nd exec.NDRange) {
		for _, tier := range ts.legs() {
			if tier.c == nil {
				continue
			}
			b.Run(name+"/"+tier.name, func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					if _, err := tier.c.Run(args, nd, exec.RunOptions{Workers: 1}); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
	for _, prog := range []string{"matvec", "matmul", "nbody", "blackscholes", "mandelbrot"} {
		p, err := bench.Get(prog)
		if err != nil {
			b.Fatal(err)
		}
		ts := benchCompileTierSet(b, p.Source, p.Kernel)
		inst, err := p.Instance(1)
		if err != nil {
			b.Fatal(err)
		}
		run(prog, ts, inst.Args, inst.ND)
	}
	for _, mk := range benchMicroKernels {
		ts := benchCompileTierSet(b, mk.source, "k")
		if ts.vec == nil {
			b.Fatalf("%s: expected vectorizable microkernel", mk.name)
		}
		a, out := exec.NewFloatBuffer(mk.n), exec.NewFloatBuffer(mk.n)
		for i := range a.F {
			a.F[i] = mk.fill(i)
		}
		args := []exec.Arg{exec.BufArg(a), exec.BufArg(out), exec.IntArg(mk.n)}
		run(mk.name, ts, args, exec.ND1(mk.n))
	}
}

// BenchmarkKernelExecFusion isolates the peephole super-instruction
// passes: the same kernel's bytecode with and without fusion, executed
// item-by-item on a bare VM frame (no host scheduling around it).
func BenchmarkKernelExecFusion(b *testing.B) {
	p, err := bench.Get("blackscholes")
	if err != nil {
		b.Fatal(err)
	}
	u, err := inspire.LowerSource(p.Name, p.Source)
	if err != nil {
		b.Fatal(err)
	}
	inspire.Optimize(u)
	k := u.Kernel(p.Kernel)
	for _, cfg := range []struct {
		name string
		opts vm.Options
	}{{"fused", vm.Options{}}, {"unfused", vm.Options{NoFuse: true}}} {
		prog, err := vm.CompileOpts(k, cfg.opts)
		if err != nil {
			b.Fatal(err)
		}
		inst, err := p.Instance(1)
		if err != nil {
			b.Fatal(err)
		}
		n := inst.ND.Global[0]
		f := prog.NewFrame()
		for ai, pr := range prog.Params {
			switch pr.Kind {
			case vm.ParamGlobal:
				buf := inst.Args[ai].Buf
				f.Globals[pr.Index] = vm.Buf{F: buf.F, I: buf.I}
			case vm.ParamInt:
				f.I[pr.Index] = inst.Args[ai].Int
			case vm.ParamFloat:
				f.F[pr.Index] = inst.Args[ai].Float
			}
		}
		f.WI[vm.WIGlobalSize] = [3]int64{int64(n), 1, 1}
		f.WI[vm.WILocalSize] = [3]int64{1, 1, 1}
		f.WI[vm.WINumGroups] = [3]int64{int64(n), 1, 1}
		b.Run(cfg.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				for item := 0; item < n; item++ {
					f.WI[vm.WIGlobalID][0] = int64(item)
					f.WI[vm.WIGroupID][0] = int64(item)
					f.Reset()
					if _, err := prog.Run(f); err != nil {
						b.Fatal(err)
					}
				}
			}
		})
	}
}
