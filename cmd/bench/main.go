// Command bench regenerates the paper's figure and the extension tables
// from a training database (see DESIGN.md section 5 for the experiment
// index).
//
// Usage:
//
//	bench [-db training_db.json] [-fast] [-parallel 8] [-exec-tier vm] fig1|defaults|sizes|models|ablation|oracle|steps|all
//
// If the database file does not exist it is generated first (several
// minutes for the full suite).
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/exec"
	"repro/internal/harness"
	"repro/internal/ml"
	"repro/internal/sched"
)

func main() {
	dbPath := flag.String("db", "training_db.json", "training database path (generated if missing)")
	fast := flag.Bool("fast", false, "use the fast kNN model instead of the MLP")
	parallel := flag.Int("parallel", 0, "worker goroutines for sweeps, oracle search and CV folds (0 = GOMAXPROCS)")
	execTier := flag.String("exec-tier", "", "kernel execution tier: auto, vec, vm, or closure (default: REPRO_EXEC_TIER or auto)")
	flag.Parse()
	sched.SetDefaultWorkers(*parallel)
	if *execTier != "" {
		tier, err := exec.ParseTier(*execTier)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		exec.SetDefaultTier(tier)
	}
	what := flag.Arg(0)
	if what == "" {
		what = "all"
	}

	db, err := loadOrGenerate(*dbPath)
	if err != nil {
		fail(err)
	}
	model := harness.DefaultModel()
	if *fast {
		model = harness.FastModel()
	}
	platforms := []string{"mc1", "mc2"}

	switch what {
	case "fig1", "defaults", "sizes", "models", "ablation", "oracle", "steps", "dynamic", "all":
	default:
		fail(fmt.Errorf("unknown experiment %q", what))
	}

	if what == "fig1" || what == "all" {
		for _, plat := range platforms {
			res, err := harness.Figure1(db, plat, model)
			if err != nil {
				fail(err)
			}
			harness.WriteFigure1(os.Stdout, res)
			fmt.Println()
		}
	}
	if what == "defaults" || what == "all" {
		harness.WriteDefaults(os.Stdout, harness.DefaultsAsymmetry(db, platforms))
		fmt.Println()
	}
	if what == "sizes" || what == "all" {
		progs := []string{"vecadd", "matmul", "blackscholes", "mandelbrot", "spmv", "nbody"}
		for _, plat := range platforms {
			rows, err := harness.SizeSensitivity(db, plat, progs)
			if err != nil {
				fail(err)
			}
			harness.WriteSizeSensitivity(os.Stdout, rows)
			fmt.Println()
		}
	}
	if what == "models" || what == "all" {
		models := map[string]ml.NewModel{
			"knn5":     func() ml.Classifier { return ml.NewKNN(5) },
			"dtree":    func() ml.Classifier { return ml.NewTree() },
			"forest":   func() ml.Classifier { return ml.NewForest(50, 42) },
			"logreg":   func() ml.Classifier { return ml.NewLogReg(42) },
			"mlp":      func() ml.Classifier { return ml.NewMLP(32, 42) },
			"twostage": harness.TwoStageModel(),
			"pca+mlp": func() ml.Classifier {
				return ml.NewPCAPipeline(12, 42, func() ml.Classifier { return ml.NewMLP(32, 42) })
			},
		}
		for _, plat := range platforms {
			rows, err := harness.CompareModels(db, plat, models)
			if err != nil {
				fail(err)
			}
			harness.WriteModels(os.Stdout, rows)
			fmt.Println()
		}
	}
	if what == "ablation" || what == "all" {
		for _, plat := range platforms {
			rows, err := harness.FeatureAblation(db, plat, model)
			if err != nil {
				fail(err)
			}
			harness.WriteAblation(os.Stdout, rows)
			fmt.Println()
		}
	}
	if what == "oracle" || what == "all" {
		var rows []harness.OracleGapRow
		for _, plat := range platforms {
			rows = append(rows, harness.OracleGap(db, plat))
		}
		harness.WriteOracleGap(os.Stdout, rows)
		fmt.Println()
	}
	if what == "dynamic" || what == "all" {
		progs := []string{"vecadd", "matmul", "blackscholes", "mandelbrot", "nbody", "stencil2d"}
		for _, plat := range platforms {
			rows, err := harness.DynamicComparison(plat, progs, 20)
			if err != nil {
				fail(err)
			}
			harness.WriteDynamic(os.Stdout, rows)
			fmt.Println()
		}
	}
	if what == "steps" || what == "all" {
		for _, plat := range platforms {
			rows, err := harness.StepAblation(plat, []string{"vecadd", "matmul", "blackscholes"}, []int{2, 4, 10, 20})
			if err != nil {
				fail(err)
			}
			harness.WriteSteps(os.Stdout, rows)
			fmt.Println()
		}
	}
}

func loadOrGenerate(path string) (*harness.DB, error) {
	if _, err := os.Stat(path); err == nil {
		fmt.Fprintf(os.Stderr, "loading %s\n", path)
		return harness.LoadDB(path)
	}
	fmt.Fprintf(os.Stderr, "generating training database (this takes a few minutes)...\n")
	db, err := harness.Generate(harness.GenOptions{Log: os.Stderr})
	if err != nil {
		return nil, err
	}
	if err := db.Save(path); err != nil {
		return nil, err
	}
	return db, nil
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "bench:", err)
	os.Exit(1)
}
