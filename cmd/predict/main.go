// Command predict runs the deployment phase for one benchmark: it trains
// the default model on the other 22 programs (leave-one-out, the unseen-
// program scenario), predicts the task partitioning for the requested
// problem size, and compares the prediction against the default strategies
// and the oracle.
//
// Usage:
//
//	predict -db training_db.json -platform mc2 -program matmul -size 4
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/bench"
	"repro/internal/harness"
	"repro/internal/ml"
)

func main() {
	dbPath := flag.String("db", "training_db.json", "training database (from cmd/train)")
	platform := flag.String("platform", "mc2", "target platform: mc1 or mc2")
	program := flag.String("program", "matmul", "benchmark program name")
	sizeIdx := flag.Int("size", -1, "problem size index 0-5 (default: program default)")
	flag.Parse()

	db, err := harness.LoadDB(*dbPath)
	if err != nil {
		fail(fmt.Errorf("%w (run cmd/train first)", err))
	}
	p, err := bench.Get(*program)
	if err != nil {
		fail(err)
	}
	if *sizeIdx < 0 {
		*sizeIdx = p.DefaultSize
	}
	rec := db.Find(*platform, *program, *sizeIdx)
	if rec == nil {
		fail(fmt.Errorf("no record for %s/%s size %d", *platform, *program, *sizeIdx))
	}

	// Leave-one-program-out: train on everything except the target.
	data := db.Dataset(*platform, nil)
	trainIdx, _ := data.SplitByGroup(*program)
	train := data.Subset(trainIdx)
	scaler := ml.FitScaler(train)
	model := harness.DefaultModel()()
	if err := model.Fit(scaler.TransformDataset(train)); err != nil {
		fail(err)
	}
	cls := model.Predict(scaler.Transform(rec.Features))
	if cls < 0 || cls >= len(rec.Times) {
		cls = 0
	}

	fmt.Printf("program %s, size %s (N=%d), platform %s\n", *program, rec.SizeLabel, rec.SizeN, *platform)
	fmt.Printf("  predicted partitioning (CPU/GPU1/GPU2): %s  -> %.4g ms\n", db.Space[cls], rec.Times[cls]*1e3)
	fmt.Printf("  oracle partitioning:                    %s  -> %.4g ms\n", rec.BestPartition, rec.OracleTime*1e3)
	fmt.Printf("  CPU-only: %.4g ms   GPU-only: %.4g ms\n", rec.CPUOnlyTime*1e3, rec.GPUOnlyTime*1e3)
	fmt.Printf("  speedup vs CPU-only %.2fx, vs GPU-only %.2fx, oracle efficiency %.2f\n",
		rec.CPUOnlyTime/rec.Times[cls], rec.GPUOnlyTime/rec.Times[cls], rec.OracleTime/rec.Times[cls])
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "predict:", err)
	os.Exit(1)
}
