// Command predict runs the deployment phase for one benchmark: it
// predicts the task partitioning for the requested problem size and
// compares the prediction against the default strategies and the oracle.
//
// By default the prediction is leave-one-program-out (the unseen-program
// scenario): the model is trained on the other programs. With -models the
// command first looks for a matching model artifact (written by a
// previous run with -save-model, or by cmd/train -model-out for the
// full-model case) and only falls back to training on the fly when none
// exists.
//
// Usage:
//
//	predict -db training_db.json -platform mc2 -program matmul -size 4
//	        [-models models/] [-save-model] [-full]
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/engine"
	"repro/internal/harness"
)

func main() {
	dbPath := flag.String("db", "training_db.json", "training database (from cmd/train)")
	platform := flag.String("platform", "mc2", "target platform: mc1 or mc2")
	program := flag.String("program", "matmul", "benchmark program name")
	sizeIdx := flag.Int("size", -1, "problem size index 0-5 (default: program default)")
	models := flag.String("models", "", "model artifact directory (loaded before training on the fly)")
	saveModel := flag.Bool("save-model", false, "persist a freshly trained model into -models for reuse")
	full := flag.Bool("full", false, "use the full model (target program in the training set) instead of leave-one-out")
	flag.Parse()

	if *saveModel && *models == "" {
		fail(fmt.Errorf("-save-model requires -models to name the artifact directory"))
	}
	db, err := harness.LoadDB(*dbPath)
	if err != nil {
		fail(fmt.Errorf("%w (run cmd/train first)", err))
	}
	eng, err := engine.New(engine.Options{
		Platform:    *platform,
		DB:          db,
		ArtifactDir: *models,
		Model:       harness.DefaultModel(),
		SaveTrained: *saveModel,
	})
	if err != nil {
		fail(err)
	}

	p, err := eng.Predict(engine.Request{Program: *program, SizeIdx: *sizeIdx, LeaveOut: !*full})
	if err != nil {
		fail(err)
	}
	if p.Clamped {
		// Surface the fault instead of silently mispricing: the model
		// answered a class outside the partition space and the serving
		// path substituted class 0 (CPU-only).
		fmt.Fprintf(os.Stderr,
			"predict: warning: model predicted out-of-range class %d (partition space has %d classes); serving class 0 (%s) instead\n",
			p.RawClass, len(db.Space), p.Partition)
	}

	artifactPath := engine.ArtifactPath(*models, *platform, p.LeftOut)
	source := "trained on the fly"
	switch p.ModelSource {
	case engine.ModelFromArtifact:
		source = "loaded from " + artifactPath
	case engine.ModelTrainedSaved:
		source = "trained on the fly, saved to " + artifactPath
	case engine.ModelTrainedSaveFailed:
		source = "trained on the fly; could not persist artifact"
		fmt.Fprintf(os.Stderr, "predict: warning: failed to save model artifact to %s (next run will retrain)\n", artifactPath)
	}
	fmt.Printf("program %s, size %s (N=%d), platform %s\n", p.Program, p.SizeLabel, p.SizeN, p.Platform)
	fmt.Printf("  model %s (left-out %q, %s)\n", p.Model, p.LeftOut, source)
	fmt.Printf("  predicted partitioning (CPU/GPU1/GPU2): %s  -> %.4g ms\n", p.Partition, p.PredictedTime*1e3)
	if p.OracleTime > 0 {
		fmt.Printf("  oracle partitioning:                    %s  -> %.4g ms\n", p.OraclePartition, p.OracleTime*1e3)
		fmt.Printf("  CPU-only: %.4g ms   GPU-only: %.4g ms\n", p.CPUOnlyTime*1e3, p.GPUOnlyTime*1e3)
		fmt.Printf("  speedup vs CPU-only %.2fx, vs GPU-only %.2fx, oracle efficiency %.2f\n",
			p.CPUOnlyTime/p.PredictedTime, p.GPUOnlyTime/p.PredictedTime, p.OracleTime/p.PredictedTime)
	}
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "predict:", err)
	os.Exit(1)
}
