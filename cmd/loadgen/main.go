// Command loadgen is a closed-loop load generator for cmd/serve: N
// concurrent workers each issue one request, wait for the full response,
// and immediately issue the next, for a fixed duration. It reports
// sustained QPS and latency percentiles (p50/p95/p99) as JSON, which
// scripts/bench.sh folds into the repo's BENCH_<timestamp>.json perf
// trajectory.
//
// Closed-loop (as opposed to open-loop, fixed-rate) generation measures
// the server's sustainable throughput under back-pressure: each worker
// models one synchronous client, so QPS = workers / mean latency.
//
// Usage:
//
//	loadgen -addr http://127.0.0.1:8090 [-endpoint /predict] \
//	        [-program vecadd] [-size -1] [-workers 8] [-duration 5s] \
//	        [-batch 0] [-out metrics.json]
//
// With -batch N > 0 the workers POST /predict/batch bodies carrying N
// copies of the point instead of single GET /predict requests, and the
// report additionally contains points/s (QPS x batch).
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"sort"
	"strings"
	"sync"
	"time"
)

// result aggregates one worker's closed loop.
type result struct {
	lats []time.Duration
	errs int
}

// Report is the emitted JSON document.
type Report struct {
	Endpoint        string  `json:"endpoint"`
	Program         string  `json:"program"`
	SizeIdx         int     `json:"size"`
	Workers         int     `json:"workers"`
	Batch           int     `json:"batch,omitempty"`
	DurationSeconds float64 `json:"durationSeconds"`
	Requests        int     `json:"requests"`
	Errors          int     `json:"errors"`
	QPS             float64 `json:"qps"`
	PointsPerSecond float64 `json:"pointsPerSecond,omitempty"`
	LatencyMicros   struct {
		Mean float64 `json:"mean"`
		P50  float64 `json:"p50"`
		P95  float64 `json:"p95"`
		P99  float64 `json:"p99"`
		Max  float64 `json:"max"`
	} `json:"latencyMicros"`
}

func main() {
	addr := flag.String("addr", "http://127.0.0.1:8090", "base URL of the serve process")
	endpoint := flag.String("endpoint", "/predict", "endpoint to drive: /predict or /execute (-batch selects /predict/batch)")
	program := flag.String("program", "vecadd", "program to request")
	size := flag.Int("size", -1, "problem size index (-1 = program default)")
	workers := flag.Int("workers", 8, "concurrent closed-loop clients")
	duration := flag.Duration("duration", 5*time.Second, "measurement window")
	batch := flag.Int("batch", 0, "points per request via /predict/batch (0 = single-point requests)")
	out := flag.String("out", "", "write the JSON report to this file (default stdout)")
	warmup := flag.Duration("warmup", 200*time.Millisecond, "closed-loop warmup excluded from the measurement")
	flag.Parse()
	if *workers < 1 {
		fail(fmt.Errorf("need at least 1 worker"))
	}

	client := &http.Client{
		Timeout: 30 * time.Second,
		Transport: &http.Transport{
			MaxIdleConns:        *workers * 2,
			MaxIdleConnsPerHost: *workers * 2,
		},
	}

	// Build the request shape once. Closed-loop workers re-issue it.
	var (
		method = http.MethodGet
		target = fmt.Sprintf("%s%s?program=%s&size=%d", *addr, *endpoint, *program, *size)
		body   []byte
	)
	switch {
	case *batch > 0:
		method = http.MethodPost
		target = *addr + "/predict/batch"
		one := fmt.Sprintf(`{"program":%q,"size":%d}`, *program, *size)
		reqs := make([]string, *batch)
		for i := range reqs {
			reqs[i] = one
		}
		body = []byte(`{"requests":[` + strings.Join(reqs, ",") + `]}`)
	case *endpoint == "/execute":
		method = http.MethodPost
	}

	issue := func() error {
		var rd io.Reader
		if body != nil {
			rd = bytes.NewReader(body)
		}
		req, err := http.NewRequest(method, target, rd)
		if err != nil {
			return err
		}
		if body != nil {
			req.Header.Set("Content-Type", "application/json")
		}
		resp, err := client.Do(req)
		if err != nil {
			return err
		}
		if *batch > 0 {
			// /predict/batch answers 200 even when individual points
			// fail; a report built from failed points would publish
			// fiction into the benchmark trajectory.
			var br struct {
				Errors int `json:"errors"`
			}
			err := json.NewDecoder(resp.Body).Decode(&br)
			_, _ = io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				return fmt.Errorf("status %d", resp.StatusCode)
			}
			if err != nil {
				return fmt.Errorf("batch response: %w", err)
			}
			if br.Errors > 0 {
				return fmt.Errorf("batch response reported %d failed points", br.Errors)
			}
			return nil
		}
		_, _ = io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			return fmt.Errorf("status %d", resp.StatusCode)
		}
		return nil
	}

	// One request up front: fail fast (and with a useful error) when the
	// server is absent or the program unknown, before spawning workers.
	if err := issue(); err != nil {
		fail(fmt.Errorf("%s %s: %w", method, target, err))
	}

	// Warm every worker's connection and the server's caches outside the
	// measurement window.
	warmDeadline := time.Now().Add(*warmup)
	var wg sync.WaitGroup
	for w := 0; w < *workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for time.Now().Before(warmDeadline) {
				_ = issue()
			}
		}()
	}
	wg.Wait()

	results := make([]result, *workers)
	start := time.Now()
	deadline := start.Add(*duration)
	for w := 0; w < *workers; w++ {
		wg.Add(1)
		go func(res *result) {
			defer wg.Done()
			for time.Now().Before(deadline) {
				t0 := time.Now()
				if err := issue(); err != nil {
					res.errs++
					// Back off instead of busy-spinning against a dead
					// server: failed dials return in microseconds and
					// would otherwise peg the CPU being benchmarked.
					time.Sleep(10 * time.Millisecond)
					continue
				}
				res.lats = append(res.lats, time.Since(t0))
			}
		}(&results[w])
	}
	wg.Wait()
	elapsed := time.Since(start)

	var all []time.Duration
	errs := 0
	for _, r := range results {
		all = append(all, r.lats...)
		errs += r.errs
	}
	if len(all) == 0 {
		fail(fmt.Errorf("no successful requests in %s (%d errors)", elapsed, errs))
	}
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })

	rep := Report{
		Endpoint:        *endpoint,
		Program:         *program,
		SizeIdx:         *size,
		Workers:         *workers,
		Batch:           *batch,
		DurationSeconds: elapsed.Seconds(),
		Requests:        len(all),
		Errors:          errs,
		QPS:             float64(len(all)) / elapsed.Seconds(),
	}
	if *batch > 0 {
		rep.Endpoint = "/predict/batch"
		rep.PointsPerSecond = rep.QPS * float64(*batch)
	}
	micros := func(d time.Duration) float64 { return float64(d.Nanoseconds()) / 1e3 }
	var sum time.Duration
	for _, d := range all {
		sum += d
	}
	rep.LatencyMicros.Mean = micros(sum / time.Duration(len(all)))
	rep.LatencyMicros.P50 = micros(percentile(all, 0.50))
	rep.LatencyMicros.P95 = micros(percentile(all, 0.95))
	rep.LatencyMicros.P99 = micros(percentile(all, 0.99))
	rep.LatencyMicros.Max = micros(all[len(all)-1])

	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fail(err)
	}
	data = append(data, '\n')
	if *out == "" {
		os.Stdout.Write(data)
		return
	}
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		fail(err)
	}
	fmt.Printf("loadgen: %d requests, %.0f req/s, p50 %.1fµs p99 %.1fµs -> %s\n",
		rep.Requests, rep.QPS, rep.LatencyMicros.P50, rep.LatencyMicros.P99, *out)
}

// percentile returns the p-quantile by nearest-rank on the sorted
// latencies.
func percentile(sorted []time.Duration, p float64) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	i := int(p * float64(len(sorted)-1))
	return sorted[i]
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "loadgen:", err)
	os.Exit(1)
}
