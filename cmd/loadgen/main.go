// Command loadgen is a closed-loop load generator for cmd/serve: N
// concurrent workers each issue one request, wait for the full response,
// and immediately issue the next, for a fixed duration. It reports
// sustained QPS and latency percentiles (p50/p95/p99) as JSON, which
// scripts/bench.sh folds into the repo's BENCH_<timestamp>.json perf
// trajectory.
//
// Closed-loop (as opposed to open-loop, fixed-rate) generation measures
// the server's sustainable throughput under back-pressure: each worker
// models one synchronous client, so QPS = workers / mean latency.
//
// Usage:
//
//	loadgen -addr http://127.0.0.1:8090 [-endpoint /predict] \
//	        [-program vecadd] [-size -1] [-workers 8] [-duration 5s] \
//	        [-batch 0] [-wire] [-mix predict:0.6,batch:0.3,execute:0.1] \
//	        [-sweep 1,2,4,8,16] [-out metrics.json]
//
// With -batch N > 0 the workers POST /predict/batch bodies carrying N
// copies of the point instead of single GET /predict requests, and the
// report additionally contains points/s (QPS x batch).
//
// -wire switches the request and response encoding to the compact
// binary protocol (internal/wire, Content-Type application/x-repro-wire)
// over the same endpoints, so JSON-vs-wire deltas isolate the encoding.
//
// -mix drives a weighted workload instead of a single endpoint: each
// request picks predict, batch, or execute by the given weights
// (per-worker PRNG, fixed seed for reproducibility).
//
// -sweep "1,2,4,8,16" repeats the measurement once per worker count and
// emits {"sweep": [Report, ...]} — the overload trajectory for the
// admission-control gate. Responses with status 429 (quota or shed)
// count in the report's "shed" field, not as errors.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/engine"
	"repro/internal/wire"
)

// request kinds for -mix.
const (
	kindPredict = iota
	kindBatch
	kindExecute
	numKinds
)

var kindNames = [numKinds]string{"predict", "batch", "execute"}

// result aggregates one worker's closed loop.
type result struct {
	lats   []time.Duration
	points int
	errs   int
	shed   int
}

// Report is the emitted JSON document.
type Report struct {
	Endpoint        string  `json:"endpoint"`
	Protocol        string  `json:"protocol"`
	Program         string  `json:"program"`
	SizeIdx         int     `json:"size"`
	Workers         int     `json:"workers"`
	Batch           int     `json:"batch,omitempty"`
	Mix             string  `json:"mix,omitempty"`
	DurationSeconds float64 `json:"durationSeconds"`
	Requests        int     `json:"requests"`
	Errors          int     `json:"errors"`
	Shed            int     `json:"shed"`
	QPS             float64 `json:"qps"`
	PointsPerSecond float64 `json:"pointsPerSecond,omitempty"`
	LatencyMicros   struct {
		Mean float64 `json:"mean"`
		P50  float64 `json:"p50"`
		P95  float64 `json:"p95"`
		P99  float64 `json:"p99"`
		Max  float64 `json:"max"`
	} `json:"latencyMicros"`
}

// config is everything one measurement run needs.
type config struct {
	addr     string
	endpoint string
	program  string
	size     int
	batch    int
	useWire  bool
	mix      [numKinds]float64 // cumulative weights; zero value = no mix
	mixStr   string
	client   *http.Client
}

func main() {
	addr := flag.String("addr", "http://127.0.0.1:8090", "base URL of the serve process")
	endpoint := flag.String("endpoint", "/predict", "endpoint to drive: /predict or /execute (-batch selects /predict/batch)")
	program := flag.String("program", "vecadd", "program to request")
	size := flag.Int("size", -1, "problem size index (-1 = program default)")
	workers := flag.Int("workers", 8, "concurrent closed-loop clients")
	duration := flag.Duration("duration", 5*time.Second, "measurement window")
	batch := flag.Int("batch", 0, "points per request via /predict/batch (0 = single-point requests)")
	useWire := flag.Bool("wire", false, "use the compact binary wire protocol instead of JSON")
	mixFlag := flag.String("mix", "", "weighted workload, e.g. predict:0.6,batch:0.3,execute:0.1")
	sweep := flag.String("sweep", "", "comma-separated worker counts; run once per count and emit {\"sweep\":[...]}")
	out := flag.String("out", "", "write the JSON report to this file (default stdout)")
	warmup := flag.Duration("warmup", 200*time.Millisecond, "closed-loop warmup excluded from the measurement")
	flag.Parse()
	if *workers < 1 {
		fail(fmt.Errorf("need at least 1 worker"))
	}

	counts := []int{*workers}
	if *sweep != "" {
		counts = counts[:0]
		for _, f := range strings.Split(*sweep, ",") {
			n, err := strconv.Atoi(strings.TrimSpace(f))
			if err != nil || n < 1 {
				fail(fmt.Errorf("invalid -sweep element %q", f))
			}
			counts = append(counts, n)
		}
	}
	maxWorkers := 0
	for _, n := range counts {
		if n > maxWorkers {
			maxWorkers = n
		}
	}

	cfg := config{
		addr:     *addr,
		endpoint: *endpoint,
		program:  *program,
		size:     *size,
		batch:    *batch,
		useWire:  *useWire,
		mixStr:   *mixFlag,
		client: &http.Client{
			Timeout: 30 * time.Second,
			Transport: &http.Transport{
				MaxIdleConns:        maxWorkers * 2,
				MaxIdleConnsPerHost: maxWorkers * 2,
			},
		},
	}
	if *mixFlag != "" {
		mix, err := parseMix(*mixFlag)
		if err != nil {
			fail(err)
		}
		cfg.mix = mix
		if cfg.batch == 0 {
			cfg.batch = 64 // batch share of the mix needs a size
		}
	}

	// One request up front: fail fast (and with a useful error) when the
	// server is absent or the program unknown, before spawning workers.
	probe := newIssuer(&cfg, rand.New(rand.NewSource(1)))
	if _, _, err := probe(); err != nil {
		fail(fmt.Errorf("%s: %w", cfg.addr, err))
	}

	var reports []Report
	for _, n := range counts {
		rep, err := runOne(&cfg, n, *duration, *warmup)
		if err != nil {
			fail(err)
		}
		reports = append(reports, rep)
	}

	var data []byte
	var err error
	if *sweep != "" {
		data, err = json.MarshalIndent(map[string]any{"sweep": reports}, "", "  ")
	} else {
		data, err = json.MarshalIndent(reports[0], "", "  ")
	}
	if err != nil {
		fail(err)
	}
	data = append(data, '\n')
	if *out == "" {
		os.Stdout.Write(data)
		return
	}
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		fail(err)
	}
	last := reports[len(reports)-1]
	fmt.Printf("loadgen: %d requests, %.0f req/s, %d shed, p50 %.1fµs p99 %.1fµs -> %s\n",
		last.Requests, last.QPS, last.Shed, last.LatencyMicros.P50, last.LatencyMicros.P99, *out)
}

// parseMix turns "predict:0.6,batch:0.3,execute:0.1" into cumulative
// weights for O(1) sampling.
func parseMix(s string) ([numKinds]float64, error) {
	var w [numKinds]float64
	for _, f := range strings.Split(s, ",") {
		name, val, ok := strings.Cut(strings.TrimSpace(f), ":")
		if !ok {
			return w, fmt.Errorf("invalid -mix element %q (want kind:weight)", f)
		}
		x, err := strconv.ParseFloat(val, 64)
		if err != nil || x < 0 {
			return w, fmt.Errorf("invalid -mix weight %q", val)
		}
		found := false
		for k, kn := range kindNames {
			if kn == name {
				w[k] += x
				found = true
			}
		}
		if !found {
			return w, fmt.Errorf("unknown -mix kind %q (want predict, batch or execute)", name)
		}
	}
	total := 0.0
	for _, x := range w {
		total += x
	}
	if total <= 0 {
		return w, fmt.Errorf("-mix weights sum to zero")
	}
	cum := 0.0
	for k := range w {
		cum += w[k] / total
		w[k] = cum
	}
	return w, nil
}

// issuer fires one request; it returns the points it priced, whether
// the server shed it (429), and any hard error.
type issuer func() (points int, shed bool, err error)

// newIssuer builds the per-worker request loop body. Request bodies are
// prebuilt once per kind; the rng picks the kind when a mix is set.
func newIssuer(cfg *config, rng *rand.Rand) issuer {
	type shape struct {
		method, target, contentType string
		body                        []byte
		points                      int
		batchResp                   bool
	}
	build := func(kind int) shape {
		if cfg.useWire {
			sh := shape{method: http.MethodPost, contentType: wire.ContentType, points: 1}
			req := engine.Request{Program: cfg.program, SizeIdx: cfg.size}
			switch kind {
			case kindBatch:
				sh.target = cfg.addr + "/predict/batch"
				reqs := make([]engine.Request, cfg.batch)
				for i := range reqs {
					reqs[i] = req
				}
				sh.body = wire.AppendBatchRequest(nil, reqs)
				sh.points = cfg.batch
				sh.batchResp = true
			case kindExecute:
				sh.target = cfg.addr + "/execute"
				sh.body = wire.AppendExecuteRequest(nil, &req)
			default:
				sh.target = cfg.addr + "/predict"
				sh.body = wire.AppendPredictRequest(nil, &req)
			}
			return sh
		}
		sh := shape{method: http.MethodGet, points: 1}
		switch kind {
		case kindBatch:
			sh.method = http.MethodPost
			sh.target = cfg.addr + "/predict/batch"
			sh.contentType = "application/json"
			one := fmt.Sprintf(`{"program":%q,"size":%d}`, cfg.program, cfg.size)
			reqs := make([]string, cfg.batch)
			for i := range reqs {
				reqs[i] = one
			}
			sh.body = []byte(`{"requests":[` + strings.Join(reqs, ",") + `]}`)
			sh.points = cfg.batch
			sh.batchResp = true
		case kindExecute:
			sh.method = http.MethodPost
			sh.target = fmt.Sprintf("%s/execute?program=%s&size=%d", cfg.addr, cfg.program, cfg.size)
		default:
			sh.target = fmt.Sprintf("%s/predict?program=%s&size=%d", cfg.addr, cfg.program, cfg.size)
		}
		return sh
	}

	mixed := cfg.mixStr != ""
	var shapes [numKinds]shape
	if mixed {
		for k := range shapes {
			shapes[k] = build(k)
		}
	} else {
		kind := kindPredict
		switch {
		case cfg.batch > 0:
			kind = kindBatch
		case cfg.endpoint == "/execute":
			kind = kindExecute
		}
		shapes[0] = build(kind)
	}

	return func() (int, bool, error) {
		sh := &shapes[0]
		if mixed {
			x := rng.Float64()
			for k := range shapes {
				if x <= cfg.mix[k] {
					sh = &shapes[k]
					break
				}
			}
		}
		var rd io.Reader
		if sh.body != nil {
			rd = bytes.NewReader(sh.body)
		}
		req, err := http.NewRequest(sh.method, sh.target, rd)
		if err != nil {
			return 0, false, err
		}
		if sh.contentType != "" {
			req.Header.Set("Content-Type", sh.contentType)
		}
		resp, err := cfg.client.Do(req)
		if err != nil {
			return 0, false, err
		}
		defer func() {
			_, _ = io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
		}()
		if resp.StatusCode == http.StatusTooManyRequests {
			// Admission control (or a quota) shed this request; that is
			// the gate working, not a failure.
			return 0, true, nil
		}
		if resp.StatusCode != http.StatusOK {
			return 0, false, fmt.Errorf("status %d", resp.StatusCode)
		}
		if !sh.batchResp {
			return sh.points, false, nil
		}
		// /predict/batch answers 200 even when individual points fail; a
		// report built from failed points would publish fiction into the
		// benchmark trajectory.
		if cfg.useWire {
			body, err := io.ReadAll(resp.Body)
			if err != nil {
				return 0, false, err
			}
			msg, payload, err := wire.ParseFrame(body)
			if err != nil {
				return 0, false, fmt.Errorf("batch response: %w", err)
			}
			if msg != wire.MsgBatchResp {
				return 0, false, fmt.Errorf("batch response: message type %d", msg)
			}
			items, errCount, err := wire.DecodeBatchResponse(payload)
			if err != nil {
				return 0, false, fmt.Errorf("batch response: %w", err)
			}
			if errCount > 0 {
				return 0, false, fmt.Errorf("batch response reported %d failed points", errCount)
			}
			return len(items), false, nil
		}
		var br struct {
			Errors int `json:"errors"`
		}
		if err := json.NewDecoder(resp.Body).Decode(&br); err != nil {
			return 0, false, fmt.Errorf("batch response: %w", err)
		}
		if br.Errors > 0 {
			return 0, false, fmt.Errorf("batch response reported %d failed points", br.Errors)
		}
		return sh.points, false, nil
	}
}

// runOne runs one closed-loop measurement at the given worker count.
func runOne(cfg *config, workers int, duration, warmup time.Duration) (Report, error) {
	issuers := make([]issuer, workers)
	for w := range issuers {
		// Fixed per-worker seeds: a rerun issues the same kind sequence.
		issuers[w] = newIssuer(cfg, rand.New(rand.NewSource(int64(w)+1)))
	}

	// Warm every worker's connection and the server's caches outside the
	// measurement window.
	warmDeadline := time.Now().Add(warmup)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(issue issuer) {
			defer wg.Done()
			for time.Now().Before(warmDeadline) {
				_, _, _ = issue()
			}
		}(issuers[w])
	}
	wg.Wait()

	results := make([]result, workers)
	start := time.Now()
	deadline := start.Add(duration)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(issue issuer, res *result) {
			defer wg.Done()
			for time.Now().Before(deadline) {
				t0 := time.Now()
				points, shed, err := issue()
				if err != nil {
					res.errs++
					// Back off instead of busy-spinning against a dead
					// server: failed dials return in microseconds and
					// would otherwise peg the CPU being benchmarked.
					time.Sleep(10 * time.Millisecond)
					continue
				}
				if shed {
					res.shed++
					continue
				}
				res.points += points
				res.lats = append(res.lats, time.Since(t0))
			}
		}(issuers[w], &results[w])
	}
	wg.Wait()
	elapsed := time.Since(start)

	var all []time.Duration
	errs, shed, points := 0, 0, 0
	for _, r := range results {
		all = append(all, r.lats...)
		errs += r.errs
		shed += r.shed
		points += r.points
	}
	if len(all) == 0 && shed == 0 {
		return Report{}, fmt.Errorf("no successful requests in %s (%d errors)", elapsed, errs)
	}
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })

	rep := Report{
		Endpoint:        cfg.endpoint,
		Protocol:        "json",
		Program:         cfg.program,
		SizeIdx:         cfg.size,
		Workers:         workers,
		Batch:           cfg.batch,
		Mix:             cfg.mixStr,
		DurationSeconds: elapsed.Seconds(),
		Requests:        len(all),
		Errors:          errs,
		Shed:            shed,
		QPS:             float64(len(all)) / elapsed.Seconds(),
		PointsPerSecond: float64(points) / elapsed.Seconds(),
	}
	if cfg.useWire {
		rep.Protocol = "wire"
	}
	switch {
	case cfg.mixStr != "":
		rep.Endpoint = "mix"
	case cfg.batch > 0:
		rep.Endpoint = "/predict/batch"
	}
	if len(all) > 0 {
		micros := func(d time.Duration) float64 { return float64(d.Nanoseconds()) / 1e3 }
		var sum time.Duration
		for _, d := range all {
			sum += d
		}
		rep.LatencyMicros.Mean = micros(sum / time.Duration(len(all)))
		rep.LatencyMicros.P50 = micros(percentile(all, 0.50))
		rep.LatencyMicros.P95 = micros(percentile(all, 0.95))
		rep.LatencyMicros.P99 = micros(percentile(all, 0.99))
		rep.LatencyMicros.Max = micros(all[len(all)-1])
	}
	return rep, nil
}

// percentile returns the p-quantile by nearest-rank on the sorted
// latencies.
func percentile(sorted []time.Duration, p float64) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	i := int(p * float64(len(sorted)-1))
	return sorted[i]
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "loadgen:", err)
	os.Exit(1)
}
