// Command insieme is the source-to-source compiler front door: it compiles
// a single-device MiniCL program, prints the INSPIRE representation, the
// static program features, and the derived multi-device plan (which
// buffers are split vs replicated) — the compile-time half of the paper's
// pipeline.
//
// Usage:
//
//	insieme [-kernel name] [-ir] file.cl
//	insieme -benchmark vecadd          # inspect a built-in suite program
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/features"
	"repro/internal/inspire"
	"repro/internal/sched"
)

func main() {
	kernel := flag.String("kernel", "", "kernel name (default: first kernel)")
	showIR := flag.Bool("ir", false, "print the INSPIRE IR")
	benchmark := flag.String("benchmark", "", "inspect a built-in benchmark instead of a file")
	parallel := flag.Int("parallel", 0, "worker goroutines for any profiled execution (0 = GOMAXPROCS)")
	flag.Parse()
	sched.SetDefaultWorkers(*parallel)

	var name, src string
	switch {
	case *benchmark != "":
		p, err := bench.Get(*benchmark)
		if err != nil {
			fail(err)
		}
		name, src = p.Name, p.Source
		if *kernel == "" {
			*kernel = p.Kernel
		}
	case flag.NArg() == 1:
		data, err := os.ReadFile(flag.Arg(0))
		if err != nil {
			fail(err)
		}
		name, src = flag.Arg(0), string(data)
	default:
		fmt.Fprintln(os.Stderr, "usage: insieme [-kernel name] [-ir] file.cl | insieme -benchmark name")
		os.Exit(2)
	}

	p, err := core.CompileSource(name, src, *kernel)
	if err != nil {
		fail(err)
	}
	fmt.Printf("program %s, kernel %s\n\n", p.Name, p.Kernel)

	if *showIR {
		fmt.Println("--- INSPIRE IR ---")
		fmt.Println(inspire.Print(p.Unit))
	}

	fmt.Println("--- static program features ---")
	fv := features.Static(p.Static)
	for i, n := range fv.Names {
		fmt.Printf("  %-18s %8.3f\n", n, fv.Values[i])
	}

	fmt.Println("\n--- multi-device plan ---")
	fmt.Printf("  access mix: coalesced %.0f%%, strided %.0f%%, indirect %.0f%%, uniform %.0f%%\n",
		p.Plan.Mix.Coalesced*100, p.Plan.Mix.Strided*100, p.Plan.Mix.Indirect*100, p.Plan.Mix.Uniform*100)
	for _, u := range p.Plan.Usages {
		mode := "replicated to every device"
		if u.Splittable {
			mode = "split proportionally per chunk"
		}
		rw := ""
		if u.Read {
			rw += "R"
		}
		if u.Written {
			rw += "W"
		}
		fmt.Printf("  buffer %-12s [%-2s] read=%-9s write=%-9s -> %s\n",
			u.Param.Name, rw, u.ReadPattern, u.WritePattern, mode)
	}
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "insieme:", err)
	os.Exit(1)
}
