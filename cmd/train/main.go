// Command train runs the offline training phase: it profiles every
// benchmark program at every problem size, prices all candidate
// partitionings on the selected platforms, stores the resulting training
// database, and reports leave-one-program-out quality of the default
// model.
//
// With -model-out it additionally emits one trained model artifact per
// platform alongside the database; deployment tools (cmd/predict,
// cmd/serve) load these artifacts instead of retraining.
//
// With -from-observations it folds a serving deployment's observation
// log (cmd/serve -obs) into the database before training: labeled
// observations become first-class training records, so models trained
// here benefit from every oracle label production traffic produced —
// the offline half of the adaptive loop.
//
// Usage:
//
//	train -out training_db.json [-model-out models/] [-model mlp]
//	      [-programs vecadd,matmul] [-maxsize 5] [-parallel 8] [-quiet]
//	      [-from-observations obslog/]
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"repro/internal/core"
	"repro/internal/device"
	"repro/internal/engine"
	"repro/internal/harness"
	"repro/internal/ml"
	"repro/internal/obs"
	"repro/internal/sched"
)

func main() {
	out := flag.String("out", "training_db.json", "output database path")
	modelOut := flag.String("model-out", "", "directory for trained model artifacts (one per platform; empty = skip)")
	modelName := flag.String("model", "mlp", fmt.Sprintf("model family for artifacts: %s", strings.Join(harness.ModelNames(), ", ")))
	programs := flag.String("programs", "", "comma-separated program subset (default: all 23)")
	maxSize := flag.Int("maxsize", 5, "largest problem size index to measure (0-5)")
	parallel := flag.Int("parallel", 0, "worker goroutines for the sweep and oracle search (0 = GOMAXPROCS)")
	fromObs := flag.String("from-observations", "", "observation log directory (cmd/serve -obs) to merge into the database before training")
	quiet := flag.Bool("quiet", false, "suppress progress output")
	flag.Parse()
	sched.SetDefaultWorkers(*parallel)

	mk, err := harness.ModelByName(*modelName)
	if err != nil {
		fail(err)
	}
	var log io.Writer = os.Stderr
	if *quiet {
		log = nil
	}
	// -parallel flows through the scheduler's process-wide default
	// (SetDefaultWorkers above); Workers stays 0 so there is one source
	// of truth.
	opts := harness.GenOptions{MaxSizeIdx: *maxSize, Log: log}
	if *programs != "" {
		opts.Programs = strings.Split(*programs, ",")
	}

	db, err := harness.Generate(opts)
	if err != nil {
		fail(err)
	}
	if *fromObs != "" {
		log, err := obs.Open(obs.Options{Dir: *fromObs})
		if err != nil {
			fail(err)
		}
		snap, err := log.Snapshot()
		log.Close()
		if err != nil {
			fail(err)
		}
		added, skipped := db.AppendObservations(snap)
		fmt.Printf("observation log %s: merged %d labeled records (%d skipped: unlabeled, unverified or mismatched schema)\n",
			*fromObs, added, skipped)
	}
	if err := db.Save(*out); err != nil {
		fail(err)
	}
	fmt.Printf("training database: %d records (%d programs x sizes x 2 platforms) -> %s\n",
		len(db.Records), len(db.Programs()), *out)

	for _, plat := range device.Platforms() {
		if len(db.PlatformRecords(plat.Name)) == 0 {
			continue
		}
		// Deployment artifact: the full model, trained on every program.
		if *modelOut != "" {
			fw, err := core.New(plat)
			if err != nil {
				fail(err)
			}
			if err := fw.Train(db, mk); err != nil {
				fail(err)
			}
			path := engine.ArtifactPath(*modelOut, plat.Name, "")
			if err := ml.SaveArtifact(path, fw.Artifact()); err != nil {
				fail(err)
			}
			fmt.Printf("%s: model artifact (%s) -> %s\n", plat.Name, fw.ModelName(), path)
		}
		// Training-quality report: leave-one-program-out cross validation.
		res, err := harness.Figure1(db, plat.Name, mk)
		if err != nil {
			fail(err)
		}
		fmt.Printf("%s: leave-one-program-out geomean speedup vs CPU-only %.2fx, vs GPU-only %.2fx, oracle efficiency %.2f\n",
			plat.Name, res.GeoMeanVsCPU, res.GeoMeanVsGPU, res.MeanOracleEff)
	}
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "train:", err)
	os.Exit(1)
}
