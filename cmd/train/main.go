// Command train runs the offline training phase: it profiles every
// benchmark program at every problem size, prices all candidate
// partitionings on the selected platforms, stores the resulting training
// database, and reports leave-one-program-out quality of the default
// model.
//
// Usage:
//
//	train -out training_db.json [-programs vecadd,matmul] [-maxsize 5] [-parallel 8] [-quiet]
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"repro/internal/harness"
	"repro/internal/sched"
)

func main() {
	out := flag.String("out", "training_db.json", "output database path")
	programs := flag.String("programs", "", "comma-separated program subset (default: all 23)")
	maxSize := flag.Int("maxsize", 5, "largest problem size index to measure (0-5)")
	parallel := flag.Int("parallel", 0, "worker goroutines for the sweep and oracle search (0 = GOMAXPROCS)")
	quiet := flag.Bool("quiet", false, "suppress progress output")
	flag.Parse()
	sched.SetDefaultWorkers(*parallel)

	var log io.Writer = os.Stderr
	if *quiet {
		log = nil
	}
	// -parallel flows through the scheduler's process-wide default
	// (SetDefaultWorkers above); Workers stays 0 so there is one source
	// of truth.
	opts := harness.GenOptions{MaxSizeIdx: *maxSize, Log: log}
	if *programs != "" {
		opts.Programs = strings.Split(*programs, ",")
	}

	db, err := harness.Generate(opts)
	if err != nil {
		fmt.Fprintln(os.Stderr, "train:", err)
		os.Exit(1)
	}
	if err := db.Save(*out); err != nil {
		fmt.Fprintln(os.Stderr, "train:", err)
		os.Exit(1)
	}
	fmt.Printf("training database: %d records (%d programs x sizes x 2 platforms) -> %s\n",
		len(db.Records), len(db.Programs()), *out)

	for _, plat := range []string{"mc1", "mc2"} {
		if len(db.PlatformRecords(plat)) == 0 {
			continue
		}
		res, err := harness.Figure1(db, plat, harness.DefaultModel())
		if err != nil {
			fmt.Fprintln(os.Stderr, "train:", err)
			os.Exit(1)
		}
		fmt.Printf("%s: leave-one-program-out geomean speedup vs CPU-only %.2fx, vs GPU-only %.2fx, oracle efficiency %.2f\n",
			plat, res.GeoMeanVsCPU, res.GeoMeanVsGPU, res.MeanOracleEff)
	}
}
