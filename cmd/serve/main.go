// Command serve exposes the deployment engine fleet as an HTTP API: a
// long-lived process that serves one engine shard per (platform,
// tenant), loads (or trains once) each shard's partitioning model
// lazily, keeps compiled programs and feature profiles warm, and
// answers prediction and execution requests until shut down.
//
// With -platforms mc1,mc2 one process serves several platforms; the
// `platform` query parameter picks one (default: the first). Requests
// route consistently by (platform, X-Tenant) to a shard (jump hash), so
// a tenant's cache locality survives across requests while tenant quota
// state stays fleet-wide (one shared table across all shards).
//
// Alongside JSON, the predict/batch/execute endpoints speak a compact
// binary wire protocol (internal/wire): POST bodies with Content-Type
// application/x-repro-wire are decoded as wire frames and answered in
// kind, cutting the encode/decode cost that dominates /predict/batch
// throughput at high load.
//
// Each shard gates its requests through admission control: a bounded
// accept queue (-admit-inflight, -admit-queue) and a moving p99 latency
// estimate (-target-p99). Overload sheds with 429 + Retry-After instead
// of queueing without bound; /stats counts admitted/shed/queueDepth/p99
// per shard.
//
// With -obs it records every execution into a durable observation log
// (shared by all shards), and with -adaptive it closes the loop: a
// background retrainer merges the observations with the seed database,
// trains candidates, gates them against the live model and hot-swaps
// validated versions into service — no restart.
//
// Endpoints:
//
//	GET  /healthz                                  liveness + uptime + platforms
//	GET  /predict?program=P[&size=N][&platform=M]  predicted partitioning
//	POST /predict/batch                            {"requests":[...]} price N points at once
//	POST /execute?program=P[&size=N]               run partitioned, verify
//	GET  /kernels                                  registered user kernels (caller's shard)
//	POST /kernels                                  {"name","source",...} compile + register a MiniCL kernel
//	GET  /stats                                    per-shard admission + engine counters
//	GET  /models                                   model versions + lineage (per platform)
//	POST /models                                   {"rollback": N} switch version
//	GET  /retrain                                  retrainer status
//	POST /retrain                                  trigger a retrain now
//	GET  /observations                             observation log stats
//
// Usage:
//
//	serve -addr :8090 -db training_db.json -platforms mc1,mc2 \
//	      [-shards 1] [-admit-inflight 0] [-admit-queue 0] [-target-p99 0] \
//	      [-models models/] [-model mlp] [-save-trained] \
//	      [-warm vecadd,matmul] [-parallel 8] [-cache-limit 0] [-strict] \
//	      [-obs obslog/] [-obs-buffer 1024] [-adaptive] \
//	      [-retrain-interval 1m] [-retrain-min 5] [-oracle-sample 1] \
//	      [-exec-steps 0] [-exec-mem 0] [-exec-timeout 0] \
//	      [-tenant-max-kernels 32] [-tenant-max-source 1048576] [-tenant-concurrency 0]
//
// Uploaded kernels are untrusted: executions run under per-request
// step/memory/wall-clock budgets (-exec-steps, -exec-mem, -exec-timeout)
// enforced inside both execution tiers, tenants (X-Tenant header) are
// subject to fleet-wide kernel-count, source-size and concurrency
// quotas, and over-cap requests answer 429 with Retry-After. Budget
// aborts answer typed 4xx (code "budget:steps|memory|deadline").
//
// The serving path is allocation-conscious end to end: request structs,
// response structs, JSON encoders and wire buffers are pooled,
// predictions are filled in place (engine.PredictInto performs zero
// heap allocations warm), wire encode/decode is zero-allocation warm
// (interned program names), and observation recording is asynchronous.
//
// SIGINT/SIGTERM drain in-flight requests and exit cleanly.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"sync"
	"syscall"
	"time"

	"repro/internal/device"
	"repro/internal/engine"
	"repro/internal/exec"
	"repro/internal/fleet"
	"repro/internal/harness"
	"repro/internal/obs"
	"repro/internal/sched"
	"repro/internal/wire"
)

// maxBodyBytes bounds every POST body: request parameters are tiny, so
// anything larger is a mistake or an attack, and must not reach the
// JSON decoder (or the wire frame parser) unbounded.
const maxBodyBytes = 1 << 20

// maxBatch bounds one /predict/batch request: large enough to amortize
// per-request overhead thoroughly, small enough that one request cannot
// monopolize the process.
const maxBatch = 1024

func main() {
	addr := flag.String("addr", ":8090", "listen address")
	dbPath := flag.String("db", "training_db.json", "training database (from cmd/train)")
	platform := flag.String("platform", "mc2", "target platform (shorthand for -platforms with one entry)")
	platforms := flag.String("platforms", "", "comma-separated platforms to serve (first is the default; overrides -platform)")
	shards := flag.Int("shards", 1, "engine shards per platform; tenants spread across them by consistent hash")
	admitInflight := flag.Int("admit-inflight", 0, "max concurrently admitted predict/batch/execute requests per shard (0 = unlimited)")
	admitQueue := flag.Int("admit-queue", 0, "max requests queued per shard beyond -admit-inflight; arrivals past that shed with 429")
	targetP99 := flag.Duration("target-p99", 0, "moving p99 latency target per shard; while exceeded, requests shed instead of queue (0 = off)")
	models := flag.String("models", "", "model artifact directory (from cmd/train -model-out)")
	modelName := flag.String("model", "mlp", fmt.Sprintf("fallback model family: %s", strings.Join(harness.ModelNames(), ", ")))
	saveTrained := flag.Bool("save-trained", false, "persist models trained on the fly (and promoted by -adaptive) into -models")
	warm := flag.String("warm", "", "comma-separated programs to pre-warm (compile, profile, predict) at startup")
	parallel := flag.Int("parallel", 0, "worker goroutines for execution and oracle search (0 = GOMAXPROCS)")
	cacheLimit := flag.Int("cache-limit", 0, "max entries per engine cache, LRU-ish eviction (0 = unbounded)")
	strict := flag.Bool("strict", false, "reject JSON bodies containing unknown fields")
	obsDir := flag.String("obs", "", "observation log directory (empty = do not record executions)")
	obsBuffer := flag.Int("obs-buffer", 0, "async observation ring capacity (0 = default 1024, negative = record synchronously)")
	adaptive := flag.Bool("adaptive", false, "run the background retrainer over the observation log (requires -obs)")
	retrainInterval := flag.Duration("retrain-interval", time.Minute, "how often the background retrainer checks for new observations")
	retrainMin := flag.Int("retrain-min", 5, "labeled observations required since the last attempt before retraining")
	oracleSample := flag.Int("oracle-sample", 1, "label every Nth execution with its measured-best class (1 = all, negative = never)")
	execTier := flag.String("exec-tier", "", "kernel execution tier: auto, vec, vm, or closure (default: REPRO_EXEC_TIER or auto)")
	execSteps := flag.Int64("exec-steps", 0, "per-request kernel step budget (0 = unlimited)")
	execMem := flag.Int64("exec-mem", 0, "per-request buffer allocation budget in bytes (0 = unlimited)")
	execTimeout := flag.Duration("exec-timeout", 0, "per-request execution wall-clock budget (0 = unlimited)")
	tenantKernels := flag.Int("tenant-max-kernels", 32, "max kernels one tenant may register fleet-wide (0 = unlimited)")
	tenantSource := flag.Int64("tenant-max-source", 1<<20, "max total MiniCL source bytes per tenant fleet-wide (0 = unlimited)")
	tenantConc := flag.Int("tenant-concurrency", 0, "max in-flight executions per tenant fleet-wide, 429 + Retry-After over the cap (0 = unlimited)")
	flag.Parse()
	sched.SetDefaultWorkers(*parallel)
	if *execTier != "" {
		tier, err := exec.ParseTier(*execTier)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		exec.SetDefaultTier(tier)
	}

	if *saveTrained && *models == "" {
		fail(fmt.Errorf("-save-trained requires -models to name the artifact directory"))
	}
	if *adaptive && *obsDir == "" {
		fail(fmt.Errorf("-adaptive requires -obs to name the observation log directory"))
	}
	platformList := []string{*platform}
	if *platforms != "" {
		platformList = strings.Split(*platforms, ",")
		for i := range platformList {
			platformList[i] = strings.TrimSpace(platformList[i])
		}
	}
	// Validate platform names up front: shards build lazily, and a typo
	// must fail at startup, not on the first unlucky request.
	for _, p := range platformList {
		if _, err := device.ByName(p); err != nil {
			fail(err)
		}
	}
	mk, err := harness.ModelByName(*modelName)
	if err != nil {
		fail(err)
	}
	db, err := harness.LoadDB(*dbPath)
	if err != nil {
		fail(fmt.Errorf("%w (run cmd/train first)", err))
	}
	var obsLog *obs.Log
	if *obsDir != "" {
		if obsLog, err = obs.Open(obs.Options{Dir: *obsDir}); err != nil {
			fail(err)
		}
		defer obsLog.Close()
	}

	// One tenant quota table and one observation log span the fleet;
	// everything else (program/model/feature caches, obs ring, stats) is
	// per shard.
	sharedTenants := engine.NewTenantTable()
	rt, err := fleet.New(fleet.Options{
		Platforms:         platformList,
		ShardsPerPlatform: *shards,
		Admission: fleet.AdmissionConfig{
			MaxInflight: *admitInflight,
			MaxQueue:    *admitQueue,
			TargetP99:   *targetP99,
		},
		NewEngine: func(platform string, shard int) (*engine.Engine, error) {
			eng, err := engine.New(engine.Options{
				Platform:          platform,
				DB:                db,
				ArtifactDir:       *models,
				Model:             mk,
				SaveTrained:       *saveTrained,
				ObsLog:            obsLog,
				OracleSampleEvery: *oracleSample,
				CacheLimit:        *cacheLimit,
				ObsQueue:          *obsBuffer,
				MaxSteps:          *execSteps,
				MaxMemBytes:       *execMem,
				ExecTimeout:       *execTimeout,
				Tenant: engine.TenantLimits{
					MaxKernels:     *tenantKernels,
					MaxSourceBytes: *tenantSource,
					MaxConcurrent:  *tenantConc,
				},
				SharedTenants: sharedTenants,
			})
			if err == nil {
				log.Printf("shard %s/%d up", platform, shard)
			}
			return eng, err
		},
	})
	if err != nil {
		fail(err)
	}
	// Close all created shards after the HTTP server has drained
	// (deferred before obsLog's Close, so it runs first): the final
	// flushes land every observation enqueued by completed requests.
	closeShards := func() {
		for _, sh := range rt.Shards() {
			sh.Engine().Close()
		}
	}
	defer closeShards()

	// Build the default tenant's shard on the default platform eagerly:
	// configuration errors (bad db, missing artifacts) surface at
	// startup, and the common case serves warm from the first request.
	defShard, err := rt.ShardFor("", "")
	if err != nil {
		fail(err)
	}
	srv := &server{fleet: rt, obsLog: obsLog, start: time.Now(), strict: *strict, intern: wire.NewIntern()}

	if *warm != "" {
		for _, prog := range strings.Split(*warm, ",") {
			if _, err := defShard.Engine().Predict(engine.Request{Program: prog, SizeIdx: -1}); err != nil {
				fail(fmt.Errorf("warmup %s: %w", prog, err))
			}
			log.Printf("warmed %s", prog)
		}
	}
	if *adaptive {
		// The retrainer runs on the eagerly built default shard; lazily
		// created shards retrain on demand via POST /retrain.
		stopRetrain, err := defShard.Engine().StartRetrainer(*retrainInterval, *retrainMin)
		if err != nil {
			fail(err)
		}
		defer stopRetrain()
		log.Printf("adaptive retrainer running (interval %s, threshold %d labeled observations)", *retrainInterval, *retrainMin)
	}

	httpSrv := &http.Server{Addr: *addr, Handler: srv.mux()}
	errc := make(chan error, 1)
	go func() {
		log.Printf("serving %s on %s (db %s, models %q, obs %q, %d shard(s)/platform)",
			strings.Join(platformList, ","), *addr, *dbPath, *models, *obsDir, rt.ShardsPerPlatform())
		errc <- httpSrv.ListenAndServe()
	}()

	// fail() exits without running defers; once the server has been
	// serving, every error exit must drain the async observation rings
	// first so executions that already answered stay durable.
	failServing := func(err error) {
		closeShards()
		if obsLog != nil {
			obsLog.Close()
		}
		fail(err)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	select {
	case err := <-errc:
		failServing(err)
	case <-ctx.Done():
	}
	log.Printf("shutting down: draining in-flight requests")
	shutdownCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := httpSrv.Shutdown(shutdownCtx); err != nil {
		failServing(err)
	}
	if err := <-errc; err != nil && !errors.Is(err, http.ErrServerClosed) {
		failServing(err)
	}
	var preds, execs uint64
	for _, st := range rt.Stats() {
		preds += st.Engine.PredictRequests
		execs += st.Engine.Executions
	}
	log.Printf("shutdown complete (%d predictions, %d executions served)", preds, execs)
}

type server struct {
	fleet  *fleet.Router
	obsLog *obs.Log
	start  time.Time
	// strict rejects JSON bodies with unknown fields (schema typos fail
	// loudly instead of being silently ignored).
	strict bool
	// intern deduplicates program names decoded from wire requests so
	// the warm wire path allocates nothing.
	intern *wire.Intern
}

func (s *server) mux() *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", s.handleHealthz)
	mux.HandleFunc("/predict", s.handlePredict)
	mux.HandleFunc("/predict/batch", s.handlePredictBatch)
	mux.HandleFunc("/execute", s.handleExecute)
	mux.HandleFunc("/kernels", s.handleKernels)
	mux.HandleFunc("/stats", s.handleStats)
	mux.HandleFunc("/models", s.handleModels)
	mux.HandleFunc("/retrain", s.handleRetrain)
	mux.HandleFunc("/observations", s.handleObservations)
	return mux
}

// shard resolves the request's (platform, tenant) shard — platform from
// the query (default: first configured), tenant from X-Tenant — and
// answers 404 for unserved platforms (503 if the shard's engine cannot
// be built). Returns nil when the request was already answered.
func (s *server) shard(w http.ResponseWriter, r *http.Request) *fleet.Shard {
	platform := r.URL.Query().Get("platform")
	sh, err := s.fleet.ShardFor(platform, tenantOf(r))
	if err == nil {
		return sh
	}
	status := http.StatusServiceUnavailable
	if platform != "" && !s.served(platform) {
		status = http.StatusNotFound
	}
	if isWire(r) {
		writeWireError(w, status, "platform", err.Error(), 0)
	} else {
		writeError(w, status, err)
	}
	return nil
}

func (s *server) served(platform string) bool {
	for _, p := range s.fleet.Platforms() {
		if p == platform {
			return true
		}
	}
	return false
}

// admit runs the shard's admission gate, answering 429 + Retry-After
// (JSON or wire to match the request) when the shard sheds. Returns
// false when the request was already answered.
func (s *server) admit(w http.ResponseWriter, r *http.Request, sh *fleet.Shard) (fleet.Permit, bool) {
	permit, err := sh.Admit(r.Context())
	if err == nil {
		return permit, true
	}
	var se *fleet.ShedError
	switch {
	case errors.As(err, &se):
		secs := retryAfterSecs(se.RetryAfter)
		if isWire(r) {
			w.Header().Set("Retry-After", strconv.Itoa(secs))
			writeWireError(w, http.StatusTooManyRequests, "shed", err.Error(), secs)
		} else {
			w.Header().Set("Retry-After", strconv.Itoa(secs))
			writeJSON(w, http.StatusTooManyRequests, map[string]any{
				"error": err.Error(),
				"code":  "shed",
			})
		}
	default:
		// Context cancellation while queued: the client hung up; any
		// status works, 503 keeps the log honest.
		writeError(w, http.StatusServiceUnavailable, err)
	}
	return fleet.Permit{}, false
}

func retryAfterSecs(d time.Duration) int {
	secs := int64((d + time.Second - 1) / time.Second)
	if secs < 1 {
		secs = 1
	}
	return int(secs)
}

// allowMethods enforces the endpoint's method set: anything else gets
// 405 with an Allow header listing what would have worked. Returns false
// when the request was already answered.
func allowMethods(w http.ResponseWriter, r *http.Request, methods ...string) bool {
	for _, m := range methods {
		if r.Method == m {
			return true
		}
	}
	w.Header().Set("Allow", strings.Join(methods, ", "))
	writeError(w, http.StatusMethodNotAllowed, fmt.Errorf("method %s not allowed (allow: %s)", r.Method, strings.Join(methods, ", ")))
	return false
}

// decodeBody decodes an optional JSON POST body into v, bounded by
// maxBodyBytes. An empty body is fine (parameters may be in the query),
// but anything after the first JSON value is not: trailing garbage means
// the client built the request wrong (or something is smuggling data),
// and silently ignoring it would mask the bug. With -strict, unknown
// fields are rejected too.
func (s *server) decodeBody(w http.ResponseWriter, r *http.Request, v any) error {
	if r.Method != http.MethodPost {
		return nil
	}
	r.Body = http.MaxBytesReader(w, r.Body, maxBodyBytes)
	// Decode regardless of Content-Length: chunked bodies report -1.
	dec := json.NewDecoder(r.Body)
	if s.strict {
		dec.DisallowUnknownFields()
	}
	if err := dec.Decode(v); err != nil {
		if errors.Is(err, io.EOF) {
			return nil // empty body
		}
		return fmt.Errorf("invalid JSON body: %w", err)
	}
	if dec.More() {
		return fmt.Errorf("invalid JSON body: trailing data after the request object")
	}
	return nil
}

// bodyErrStatus picks the status for a request-body error: an oversized
// body (MaxBytesReader tripped) is 413, anything else malformed is 400.
func bodyErrStatus(err error) int {
	var mbe *http.MaxBytesError
	if errors.As(err, &mbe) {
		return http.StatusRequestEntityTooLarge
	}
	return http.StatusBadRequest
}

// tenantOf extracts the caller's tenant from the X-Tenant header; empty
// means engine.DefaultTenant.
func tenantOf(r *http.Request) string {
	return strings.TrimSpace(r.Header.Get("X-Tenant"))
}

// writeEngineError maps engine failures to distinct status codes so
// clients can react without parsing messages: budget exhaustion is
// 422/413/408 by kind (steps/memory/deadline) with the spent/limit pair
// in the body, quota rejections are 429 with Retry-After, compile
// failures 400 (message carries the MiniCL line:column), name conflicts
// 409, and anything else 422.
func writeEngineError(w http.ResponseWriter, err error) {
	var be *exec.BudgetError
	var qe *engine.QuotaError
	var ce *engine.CompileError
	switch {
	case errors.As(err, &be):
		status := http.StatusUnprocessableEntity
		switch be.Kind {
		case exec.BudgetMemory:
			status = http.StatusRequestEntityTooLarge
		case exec.BudgetDeadline:
			status = http.StatusRequestTimeout
		}
		writeJSON(w, status, map[string]any{
			"error": err.Error(),
			"code":  "budget:" + be.Kind,
			"spent": be.Spent,
			"limit": be.Limit,
		})
	case errors.As(err, &qe):
		w.Header().Set("Retry-After", strconv.Itoa(retryAfterSecs(qe.RetryAfter)))
		writeJSON(w, http.StatusTooManyRequests, map[string]any{
			"error": err.Error(),
			"code":  "quota",
		})
	case errors.As(err, &ce):
		writeJSON(w, http.StatusBadRequest, map[string]any{
			"error": err.Error(),
			"code":  "compile",
		})
	case errors.Is(err, engine.ErrKernelExists):
		writeJSON(w, http.StatusConflict, map[string]any{
			"error": err.Error(),
			"code":  "exists",
		})
	case errors.Is(err, engine.ErrInvalidKernel):
		writeJSON(w, http.StatusBadRequest, map[string]any{
			"error": err.Error(),
			"code":  "invalid",
		})
	default:
		writeError(w, http.StatusUnprocessableEntity, err)
	}
}

// parseRequest builds an engine request from query parameters (any
// method) or a JSON body (POST with a body).
func (s *server) parseRequest(w http.ResponseWriter, r *http.Request) (engine.Request, error) {
	req := engine.Request{SizeIdx: -1}
	if err := s.decodeBody(w, r, &req); err != nil {
		return req, err
	}
	q := r.URL.Query()
	if v := q.Get("program"); v != "" {
		req.Program = v
	}
	if v := q.Get("size"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil {
			return req, fmt.Errorf("invalid size %q", v)
		}
		req.SizeIdx = n
	}
	if v := q.Get("leaveout"); v != "" {
		b, err := strconv.ParseBool(v)
		if err != nil {
			return req, fmt.Errorf("invalid leaveout %q", v)
		}
		req.LeaveOut = b
	}
	if req.Program == "" {
		return req, fmt.Errorf("missing required parameter: program")
	}
	return req, nil
}

func (s *server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if !allowMethods(w, r, http.MethodGet, http.MethodHead) {
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"status":        "ok",
		"platform":      s.fleet.DefaultPlatform(),
		"platforms":     s.fleet.Platforms(),
		"uptimeSeconds": time.Since(s.start).Seconds(),
	})
}

// predPool recycles response structs across /predict requests: the
// engine fills them in place (zero allocations warm), so the handler's
// per-request garbage is just the response bytes.
var predPool = sync.Pool{New: func() any { return new(engine.Prediction) }}

func (s *server) handlePredict(w http.ResponseWriter, r *http.Request) {
	if !allowMethods(w, r, http.MethodGet, http.MethodPost) {
		return
	}
	sh := s.shard(w, r)
	if sh == nil {
		return
	}
	permit, ok := s.admit(w, r, sh)
	if !ok {
		return
	}
	defer permit.Release()
	if isWire(r) {
		s.wirePredict(w, r, sh)
		return
	}
	req, err := s.parseRequest(w, r)
	if err != nil {
		writeError(w, bodyErrStatus(err), err)
		return
	}
	p := predPool.Get().(*engine.Prediction)
	defer predPool.Put(p)
	if err := sh.Engine().PredictInto(req, p); err != nil {
		writeError(w, http.StatusUnprocessableEntity, err)
		return
	}
	writeJSON(w, http.StatusOK, p)
}

// batchRequest is the POST /predict/batch body.
type batchRequest struct {
	// Requests lists the points to price; each element accepts the same
	// fields as /predict's body ("program", "size", "leaveOut"). Raw
	// messages are kept so every element gets /predict's defaulting
	// (omitted size = the program's default size).
	Requests []json.RawMessage `json:"requests"`
}

// batchResult is one element of the batch response: a prediction, or a
// per-point error (one bad point does not fail its siblings).
type batchResult struct {
	engine.Prediction
	Error string `json:"error,omitempty"`
}

// batchPool recycles the per-request result slices.
var batchPool = sync.Pool{New: func() any { return new([]batchResult) }}

// handlePredictBatch prices N points in one request through the
// engine's scratch API, amortizing HTTP, decoding and encoding overhead
// across the whole batch.
func (s *server) handlePredictBatch(w http.ResponseWriter, r *http.Request) {
	if !allowMethods(w, r, http.MethodPost) {
		return
	}
	sh := s.shard(w, r)
	if sh == nil {
		return
	}
	permit, ok := s.admit(w, r, sh)
	if !ok {
		return
	}
	defer permit.Release()
	if isWire(r) {
		s.wirePredictBatch(w, r, sh)
		return
	}
	var breq batchRequest
	if err := s.decodeBody(w, r, &breq); err != nil {
		writeError(w, bodyErrStatus(err), err)
		return
	}
	if len(breq.Requests) == 0 {
		writeError(w, http.StatusBadRequest, fmt.Errorf("missing or empty requests array"))
		return
	}
	if len(breq.Requests) > maxBatch {
		writeError(w, http.StatusBadRequest, fmt.Errorf("batch of %d exceeds the %d-point limit", len(breq.Requests), maxBatch))
		return
	}
	resultsp := batchPool.Get().(*[]batchResult)
	defer func() {
		// Same capacity discipline as jsonPool: a maximal batch must not
		// pin its result slice behind every future small request.
		if cap(*resultsp) <= 256 {
			batchPool.Put(resultsp)
		}
	}()
	results := (*resultsp)[:0]
	errs := 0
	for i, raw := range breq.Requests {
		results = append(results, batchResult{})
		res := &results[len(results)-1]
		req := engine.Request{SizeIdx: -1}
		dec := json.NewDecoder(bytes.NewReader(raw))
		if s.strict {
			dec.DisallowUnknownFields()
		}
		if err := dec.Decode(&req); err != nil {
			res.Error = fmt.Sprintf("request %d: invalid JSON: %v", i, err)
			errs++
			continue
		}
		if req.Program == "" {
			res.Error = fmt.Sprintf("request %d: missing required parameter: program", i)
			errs++
			continue
		}
		if err := sh.Engine().PredictInto(req, &res.Prediction); err != nil {
			res.Prediction = engine.Prediction{}
			res.Error = fmt.Sprintf("request %d: %v", i, err)
			errs++
		}
	}
	*resultsp = results
	writeJSON(w, http.StatusOK, map[string]any{
		"count":   len(results),
		"errors":  errs,
		"results": results,
	})
}

func (s *server) handleExecute(w http.ResponseWriter, r *http.Request) {
	if !allowMethods(w, r, http.MethodPost) {
		return
	}
	sh := s.shard(w, r)
	if sh == nil {
		return
	}
	permit, ok := s.admit(w, r, sh)
	if !ok {
		return
	}
	defer permit.Release()
	if isWire(r) {
		s.wireExecute(w, r, sh)
		return
	}
	req, err := s.parseRequest(w, r)
	if err != nil {
		writeError(w, bodyErrStatus(err), err)
		return
	}
	req.Tenant = tenantOf(r)
	// The request context rides into the kernel: a client that hangs up
	// mid-execution aborts the kernel instead of burning cycles for
	// nobody.
	res, err := sh.Engine().Execute(r.Context(), req)
	if err != nil {
		writeEngineError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, res)
}

// handleKernels serves the user-kernel registry: GET lists the caller's
// shard's registered kernels, POST compiles an uploaded MiniCL source
// and registers it for the caller's tenant on its shard. Registration
// quotas charge the fleet-wide tenant table.
func (s *server) handleKernels(w http.ResponseWriter, r *http.Request) {
	if !allowMethods(w, r, http.MethodGet, http.MethodPost) {
		return
	}
	sh := s.shard(w, r)
	if sh == nil {
		return
	}
	if r.Method == http.MethodGet {
		kernels := sh.Engine().ListKernels()
		writeJSON(w, http.StatusOK, map[string]any{
			"count":   len(kernels),
			"kernels": kernels,
		})
		return
	}
	var spec engine.KernelSpec
	if err := s.decodeBody(w, r, &spec); err != nil {
		writeError(w, bodyErrStatus(err), err)
		return
	}
	if spec.Name == "" || spec.Source == "" {
		writeError(w, http.StatusBadRequest, fmt.Errorf("missing required fields: name, source"))
		return
	}
	info, err := sh.Engine().RegisterKernel(tenantOf(r), spec)
	if err != nil {
		writeEngineError(w, err)
		return
	}
	writeJSON(w, http.StatusCreated, info)
}

func (s *server) handleStats(w http.ResponseWriter, r *http.Request) {
	if !allowMethods(w, r, http.MethodGet) {
		return
	}
	shards := s.fleet.Stats()
	// Fleet-wide vector-tier totals, so divergence behavior is visible
	// without walking every shard's engine counters.
	var vecDiv, vecRec, vecBail uint64
	for _, st := range shards {
		vecDiv += st.Engine.VecDivergences
		vecRec += st.Engine.VecReconverges
		vecBail += st.Engine.VecScalarBails
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"uptimeSeconds":     time.Since(s.start).Seconds(),
		"execTier":          exec.DefaultTier().String(),
		"platforms":         s.fleet.Platforms(),
		"shardsPerPlatform": s.fleet.ShardsPerPlatform(),
		"shards":            shards,
		"vecDivergences":    vecDiv,
		"vecReconverges":    vecRec,
		"vecScalarBails":    vecBail,
	})
}

// modelsRequest is the POST /models body.
type modelsRequest struct {
	// Rollback names the version to make current again.
	Rollback int `json:"rollback"`
}

func (s *server) handleModels(w http.ResponseWriter, r *http.Request) {
	if !allowMethods(w, r, http.MethodGet, http.MethodPost) {
		return
	}
	sh := s.shard(w, r)
	if sh == nil {
		return
	}
	if r.Method == http.MethodPost {
		var req modelsRequest
		if err := s.decodeBody(w, r, &req); err != nil {
			writeError(w, http.StatusBadRequest, err)
			return
		}
		if req.Rollback <= 0 {
			writeError(w, http.StatusBadRequest, fmt.Errorf("missing or invalid rollback version"))
			return
		}
		if _, err := sh.Engine().Rollback(req.Rollback); err != nil {
			writeError(w, http.StatusUnprocessableEntity, err)
			return
		}
	}
	current, versions, err := sh.Engine().ModelVersions("")
	if err != nil {
		writeError(w, http.StatusUnprocessableEntity, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"platform": sh.Platform,
		"current":  current,
		"versions": versions,
	})
}

func (s *server) handleRetrain(w http.ResponseWriter, r *http.Request) {
	if !allowMethods(w, r, http.MethodGet, http.MethodPost) {
		return
	}
	sh := s.shard(w, r)
	if sh == nil {
		return
	}
	if r.Method == http.MethodGet {
		writeJSON(w, http.StatusOK, sh.Engine().RetrainStatus())
		return
	}
	res, err := sh.Engine().Retrain()
	switch {
	case errors.Is(err, engine.ErrRetrainInProgress):
		writeError(w, http.StatusConflict, err)
	case err != nil:
		writeError(w, http.StatusUnprocessableEntity, err)
	default:
		writeJSON(w, http.StatusOK, res)
	}
}

func (s *server) handleObservations(w http.ResponseWriter, r *http.Request) {
	if !allowMethods(w, r, http.MethodGet) {
		return
	}
	if s.obsLog == nil {
		writeJSON(w, http.StatusOK, map[string]any{"enabled": false})
		return
	}
	// Read-your-writes for operators: drain every shard's async ring so
	// the stats reflect each execution that has already answered.
	// Bounded — a stalled flusher degrades this endpoint to slightly
	// stale stats (flushed=false plus a pending count), never to a hung
	// handler.
	flushed := true
	var pending uint64
	for _, sh := range s.fleet.Shards() {
		flushed = sh.Engine().TryFlushObservations(2*time.Second) && flushed
		pending += sh.Engine().Stats().ObservationsPending
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"enabled": true,
		"flushed": flushed,
		"pending": pending,
		"log":     s.obsLog.Stats(),
	})
}

// jsonWriter pairs a reusable buffer with an encoder bound to it, so
// responses are rendered without allocating a fresh encoder (and an
// encoding failure is detected before the status line is committed).
type jsonWriter struct {
	buf bytes.Buffer
	enc *json.Encoder
}

var jsonPool = sync.Pool{New: func() any {
	jw := &jsonWriter{}
	jw.enc = json.NewEncoder(&jw.buf)
	jw.enc.SetIndent("", "  ")
	return jw
}}

// maxPooledResponse caps the buffer capacity a writer may carry back
// into the pool: one huge /predict/batch response must not permanently
// pin megabytes behind every future /healthz.
const maxPooledResponse = 64 << 10

func writeJSON(w http.ResponseWriter, code int, v any) {
	jw := jsonPool.Get().(*jsonWriter)
	defer func() {
		if jw.buf.Cap() <= maxPooledResponse {
			jsonPool.Put(jw)
		}
	}()
	jw.buf.Reset()
	if err := jw.enc.Encode(v); err != nil {
		log.Printf("serve: encoding response: %v", err)
		http.Error(w, `{"error":"response encoding failed"}`, http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	if _, err := w.Write(jw.buf.Bytes()); err != nil {
		log.Printf("serve: writing response: %v", err)
	}
}

func writeError(w http.ResponseWriter, code int, err error) {
	writeJSON(w, code, map[string]string{"error": err.Error()})
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "serve:", err)
	os.Exit(1)
}
