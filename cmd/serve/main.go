// Command serve exposes the deployment engine as an HTTP JSON API: a
// long-lived process that loads (or trains once) the partitioning model,
// keeps compiled programs and feature profiles warm, and answers
// prediction and execution requests until shut down.
//
// With -obs it records every execution into a durable observation log,
// and with -adaptive it closes the loop: a background retrainer merges
// the observations with the seed database, trains candidates, gates them
// against the live model (no-regression on a held-out slice) and
// hot-swaps validated versions into service — no restart.
//
// Endpoints:
//
//	GET  /healthz                                  liveness + uptime
//	GET  /predict?program=P[&size=N][&leaveout=1]  predicted partitioning
//	POST /execute?program=P[&size=N]               run partitioned, verify
//	GET  /stats                                    engine cache/work counters
//	GET  /models                                   model versions + lineage
//	POST /models                                   {"rollback": N} switch version
//	GET  /retrain                                  retrainer status
//	POST /retrain                                  trigger a retrain now
//	GET  /observations                             observation log stats
//
// Usage:
//
//	serve -addr :8090 -db training_db.json -platform mc2 \
//	      [-models models/] [-model mlp] [-save-trained] \
//	      [-warm vecadd,matmul] [-parallel 8] [-cache-limit 0] \
//	      [-obs obslog/] [-adaptive] [-retrain-interval 1m] \
//	      [-retrain-min 5] [-oracle-sample 1]
//
// SIGINT/SIGTERM drain in-flight requests and exit cleanly.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"repro/internal/engine"
	"repro/internal/harness"
	"repro/internal/obs"
	"repro/internal/sched"
)

// maxBodyBytes bounds every POST body: request parameters are tiny, so
// anything larger is a mistake or an attack, and must not reach the JSON
// decoder unbounded.
const maxBodyBytes = 1 << 20

func main() {
	addr := flag.String("addr", ":8090", "listen address")
	dbPath := flag.String("db", "training_db.json", "training database (from cmd/train)")
	platform := flag.String("platform", "mc2", "target platform: mc1 or mc2")
	models := flag.String("models", "", "model artifact directory (from cmd/train -model-out)")
	modelName := flag.String("model", "mlp", fmt.Sprintf("fallback model family: %s", strings.Join(harness.ModelNames(), ", ")))
	saveTrained := flag.Bool("save-trained", false, "persist models trained on the fly (and promoted by -adaptive) into -models")
	warm := flag.String("warm", "", "comma-separated programs to pre-warm (compile, profile, predict) at startup")
	parallel := flag.Int("parallel", 0, "worker goroutines for execution and oracle search (0 = GOMAXPROCS)")
	cacheLimit := flag.Int("cache-limit", 0, "max entries per engine cache, LRU-ish eviction (0 = unbounded)")
	obsDir := flag.String("obs", "", "observation log directory (empty = do not record executions)")
	adaptive := flag.Bool("adaptive", false, "run the background retrainer over the observation log (requires -obs)")
	retrainInterval := flag.Duration("retrain-interval", time.Minute, "how often the background retrainer checks for new observations")
	retrainMin := flag.Int("retrain-min", 5, "labeled observations required since the last attempt before retraining")
	oracleSample := flag.Int("oracle-sample", 1, "label every Nth execution with its measured-best class (1 = all, negative = never)")
	flag.Parse()
	sched.SetDefaultWorkers(*parallel)

	if *saveTrained && *models == "" {
		fail(fmt.Errorf("-save-trained requires -models to name the artifact directory"))
	}
	if *adaptive && *obsDir == "" {
		fail(fmt.Errorf("-adaptive requires -obs to name the observation log directory"))
	}
	mk, err := harness.ModelByName(*modelName)
	if err != nil {
		fail(err)
	}
	db, err := harness.LoadDB(*dbPath)
	if err != nil {
		fail(fmt.Errorf("%w (run cmd/train first)", err))
	}
	var obsLog *obs.Log
	if *obsDir != "" {
		if obsLog, err = obs.Open(obs.Options{Dir: *obsDir}); err != nil {
			fail(err)
		}
		defer obsLog.Close()
	}
	eng, err := engine.New(engine.Options{
		Platform:          *platform,
		DB:                db,
		ArtifactDir:       *models,
		Model:             mk,
		SaveTrained:       *saveTrained,
		ObsLog:            obsLog,
		OracleSampleEvery: *oracleSample,
		CacheLimit:        *cacheLimit,
	})
	if err != nil {
		fail(err)
	}
	srv := &server{eng: eng, obsLog: obsLog, start: time.Now(), platform: *platform}

	if *warm != "" {
		for _, prog := range strings.Split(*warm, ",") {
			if _, err := eng.Predict(engine.Request{Program: prog, SizeIdx: -1}); err != nil {
				fail(fmt.Errorf("warmup %s: %w", prog, err))
			}
			log.Printf("warmed %s", prog)
		}
	}
	if *adaptive {
		stopRetrain, err := eng.StartRetrainer(*retrainInterval, *retrainMin)
		if err != nil {
			fail(err)
		}
		defer stopRetrain()
		log.Printf("adaptive retrainer running (interval %s, threshold %d labeled observations)", *retrainInterval, *retrainMin)
	}

	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", srv.handleHealthz)
	mux.HandleFunc("/predict", srv.handlePredict)
	mux.HandleFunc("/execute", srv.handleExecute)
	mux.HandleFunc("/stats", srv.handleStats)
	mux.HandleFunc("/models", srv.handleModels)
	mux.HandleFunc("/retrain", srv.handleRetrain)
	mux.HandleFunc("/observations", srv.handleObservations)

	httpSrv := &http.Server{Addr: *addr, Handler: mux}
	errc := make(chan error, 1)
	go func() {
		log.Printf("serving %s on %s (db %s, models %q, obs %q)", *platform, *addr, *dbPath, *models, *obsDir)
		errc <- httpSrv.ListenAndServe()
	}()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	select {
	case err := <-errc:
		fail(err)
	case <-ctx.Done():
	}
	log.Printf("shutting down: draining in-flight requests")
	shutdownCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := httpSrv.Shutdown(shutdownCtx); err != nil {
		fail(err)
	}
	if err := <-errc; err != nil && !errors.Is(err, http.ErrServerClosed) {
		fail(err)
	}
	log.Printf("shutdown complete (%d predictions, %d executions served)",
		eng.Stats().PredictRequests, eng.Stats().Executions)
}

type server struct {
	eng      *engine.Engine
	obsLog   *obs.Log
	start    time.Time
	platform string
}

// allowMethods enforces the endpoint's method set: anything else gets
// 405 with an Allow header listing what would have worked. Returns false
// when the request was already answered.
func allowMethods(w http.ResponseWriter, r *http.Request, methods ...string) bool {
	for _, m := range methods {
		if r.Method == m {
			return true
		}
	}
	w.Header().Set("Allow", strings.Join(methods, ", "))
	writeError(w, http.StatusMethodNotAllowed, fmt.Errorf("method %s not allowed (allow: %s)", r.Method, strings.Join(methods, ", ")))
	return false
}

// decodeBody decodes an optional JSON POST body into v, bounded by
// maxBodyBytes. An empty body is fine (parameters may be in the query).
func decodeBody(w http.ResponseWriter, r *http.Request, v any) error {
	if r.Method != http.MethodPost {
		return nil
	}
	r.Body = http.MaxBytesReader(w, r.Body, maxBodyBytes)
	// Decode regardless of Content-Length: chunked bodies report -1.
	if err := json.NewDecoder(r.Body).Decode(v); err != nil && !errors.Is(err, io.EOF) {
		return fmt.Errorf("invalid JSON body: %w", err)
	}
	return nil
}

// parseRequest builds an engine request from query parameters (any
// method) or a JSON body (POST with a body).
func parseRequest(w http.ResponseWriter, r *http.Request) (engine.Request, error) {
	req := engine.Request{SizeIdx: -1}
	if err := decodeBody(w, r, &req); err != nil {
		return req, err
	}
	q := r.URL.Query()
	if v := q.Get("program"); v != "" {
		req.Program = v
	}
	if v := q.Get("size"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil {
			return req, fmt.Errorf("invalid size %q", v)
		}
		req.SizeIdx = n
	}
	if v := q.Get("leaveout"); v != "" {
		b, err := strconv.ParseBool(v)
		if err != nil {
			return req, fmt.Errorf("invalid leaveout %q", v)
		}
		req.LeaveOut = b
	}
	if req.Program == "" {
		return req, fmt.Errorf("missing required parameter: program")
	}
	return req, nil
}

func (s *server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if !allowMethods(w, r, http.MethodGet, http.MethodHead) {
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"status":        "ok",
		"platform":      s.platform,
		"uptimeSeconds": time.Since(s.start).Seconds(),
	})
}

func (s *server) handlePredict(w http.ResponseWriter, r *http.Request) {
	if !allowMethods(w, r, http.MethodGet, http.MethodPost) {
		return
	}
	req, err := parseRequest(w, r)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	p, err := s.eng.Predict(req)
	if err != nil {
		writeError(w, http.StatusUnprocessableEntity, err)
		return
	}
	writeJSON(w, http.StatusOK, p)
}

func (s *server) handleExecute(w http.ResponseWriter, r *http.Request) {
	if !allowMethods(w, r, http.MethodPost) {
		return
	}
	req, err := parseRequest(w, r)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	res, err := s.eng.Execute(req)
	if err != nil {
		writeError(w, http.StatusUnprocessableEntity, err)
		return
	}
	writeJSON(w, http.StatusOK, res)
}

func (s *server) handleStats(w http.ResponseWriter, r *http.Request) {
	if !allowMethods(w, r, http.MethodGet) {
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"uptimeSeconds": time.Since(s.start).Seconds(),
		"engine":        s.eng.Stats(),
	})
}

// modelsRequest is the POST /models body.
type modelsRequest struct {
	// Rollback names the version to make current again.
	Rollback int `json:"rollback"`
}

func (s *server) handleModels(w http.ResponseWriter, r *http.Request) {
	if !allowMethods(w, r, http.MethodGet, http.MethodPost) {
		return
	}
	if r.Method == http.MethodPost {
		var req modelsRequest
		if err := decodeBody(w, r, &req); err != nil {
			writeError(w, http.StatusBadRequest, err)
			return
		}
		if req.Rollback <= 0 {
			writeError(w, http.StatusBadRequest, fmt.Errorf("missing or invalid rollback version"))
			return
		}
		if _, err := s.eng.Rollback(req.Rollback); err != nil {
			writeError(w, http.StatusUnprocessableEntity, err)
			return
		}
	}
	current, versions, err := s.eng.ModelVersions("")
	if err != nil {
		writeError(w, http.StatusUnprocessableEntity, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"platform": s.platform,
		"current":  current,
		"versions": versions,
	})
}

func (s *server) handleRetrain(w http.ResponseWriter, r *http.Request) {
	if !allowMethods(w, r, http.MethodGet, http.MethodPost) {
		return
	}
	if r.Method == http.MethodGet {
		writeJSON(w, http.StatusOK, s.eng.RetrainStatus())
		return
	}
	res, err := s.eng.Retrain()
	switch {
	case errors.Is(err, engine.ErrRetrainInProgress):
		writeError(w, http.StatusConflict, err)
	case err != nil:
		writeError(w, http.StatusUnprocessableEntity, err)
	default:
		writeJSON(w, http.StatusOK, res)
	}
}

func (s *server) handleObservations(w http.ResponseWriter, r *http.Request) {
	if !allowMethods(w, r, http.MethodGet) {
		return
	}
	if s.obsLog == nil {
		writeJSON(w, http.StatusOK, map[string]any{"enabled": false})
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"enabled": true,
		"log":     s.obsLog.Stats(),
	})
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(v); err != nil {
		log.Printf("serve: encoding response: %v", err)
	}
}

func writeError(w http.ResponseWriter, code int, err error) {
	writeJSON(w, code, map[string]string{"error": err.Error()})
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "serve:", err)
	os.Exit(1)
}
