// Command serve exposes the deployment engine as an HTTP JSON API: a
// long-lived process that loads (or trains once) the partitioning model,
// keeps compiled programs and feature profiles warm, and answers
// prediction and execution requests until shut down.
//
// Endpoints:
//
//	GET  /healthz                                  liveness + uptime
//	GET  /predict?program=P[&size=N][&leaveout=1]  predicted partitioning
//	POST /execute?program=P[&size=N]               run partitioned, verify
//	GET  /stats                                    engine cache/work counters
//
// Usage:
//
//	serve -addr :8090 -db training_db.json -platform mc2 \
//	      [-models models/] [-model mlp] [-save-trained] \
//	      [-warm vecadd,matmul] [-parallel 8]
//
// SIGINT/SIGTERM drain in-flight requests and exit cleanly.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"repro/internal/engine"
	"repro/internal/harness"
	"repro/internal/sched"
)

func main() {
	addr := flag.String("addr", ":8090", "listen address")
	dbPath := flag.String("db", "training_db.json", "training database (from cmd/train)")
	platform := flag.String("platform", "mc2", "target platform: mc1 or mc2")
	models := flag.String("models", "", "model artifact directory (from cmd/train -model-out)")
	modelName := flag.String("model", "mlp", fmt.Sprintf("fallback model family: %s", strings.Join(harness.ModelNames(), ", ")))
	saveTrained := flag.Bool("save-trained", false, "persist models trained on the fly into -models")
	warm := flag.String("warm", "", "comma-separated programs to pre-warm (compile, profile, predict) at startup")
	parallel := flag.Int("parallel", 0, "worker goroutines for execution and oracle search (0 = GOMAXPROCS)")
	flag.Parse()
	sched.SetDefaultWorkers(*parallel)

	if *saveTrained && *models == "" {
		fail(fmt.Errorf("-save-trained requires -models to name the artifact directory"))
	}
	mk, err := harness.ModelByName(*modelName)
	if err != nil {
		fail(err)
	}
	db, err := harness.LoadDB(*dbPath)
	if err != nil {
		fail(fmt.Errorf("%w (run cmd/train first)", err))
	}
	eng, err := engine.New(engine.Options{
		Platform:    *platform,
		DB:          db,
		ArtifactDir: *models,
		Model:       mk,
		SaveTrained: *saveTrained,
	})
	if err != nil {
		fail(err)
	}
	srv := &server{eng: eng, start: time.Now(), platform: *platform}

	if *warm != "" {
		for _, prog := range strings.Split(*warm, ",") {
			if _, err := eng.Predict(engine.Request{Program: prog, SizeIdx: -1}); err != nil {
				fail(fmt.Errorf("warmup %s: %w", prog, err))
			}
			log.Printf("warmed %s", prog)
		}
	}

	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", srv.handleHealthz)
	mux.HandleFunc("/predict", srv.handlePredict)
	mux.HandleFunc("/execute", srv.handleExecute)
	mux.HandleFunc("/stats", srv.handleStats)

	httpSrv := &http.Server{Addr: *addr, Handler: mux}
	errc := make(chan error, 1)
	go func() {
		log.Printf("serving %s on %s (db %s, models %q)", *platform, *addr, *dbPath, *models)
		errc <- httpSrv.ListenAndServe()
	}()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	select {
	case err := <-errc:
		fail(err)
	case <-ctx.Done():
	}
	log.Printf("shutting down: draining in-flight requests")
	shutdownCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := httpSrv.Shutdown(shutdownCtx); err != nil {
		fail(err)
	}
	if err := <-errc; err != nil && !errors.Is(err, http.ErrServerClosed) {
		fail(err)
	}
	log.Printf("shutdown complete (%d predictions, %d executions served)",
		eng.Stats().PredictRequests, eng.Stats().Executions)
}

type server struct {
	eng      *engine.Engine
	start    time.Time
	platform string
}

// parseRequest builds an engine request from query parameters (any
// method) or a JSON body (POST with a body).
func parseRequest(r *http.Request) (engine.Request, error) {
	req := engine.Request{SizeIdx: -1}
	if r.Method == http.MethodPost {
		// Decode regardless of Content-Length: chunked bodies report -1.
		// An empty body (io.EOF) just means "parameters are in the query".
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil && !errors.Is(err, io.EOF) {
			return req, fmt.Errorf("invalid JSON body: %w", err)
		}
	}
	q := r.URL.Query()
	if v := q.Get("program"); v != "" {
		req.Program = v
	}
	if v := q.Get("size"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil {
			return req, fmt.Errorf("invalid size %q", v)
		}
		req.SizeIdx = n
	}
	if v := q.Get("leaveout"); v != "" {
		b, err := strconv.ParseBool(v)
		if err != nil {
			return req, fmt.Errorf("invalid leaveout %q", v)
		}
		req.LeaveOut = b
	}
	if req.Program == "" {
		return req, fmt.Errorf("missing required parameter: program")
	}
	return req, nil
}

func (s *server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{
		"status":        "ok",
		"platform":      s.platform,
		"uptimeSeconds": time.Since(s.start).Seconds(),
	})
}

func (s *server) handlePredict(w http.ResponseWriter, r *http.Request) {
	req, err := parseRequest(r)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	p, err := s.eng.Predict(req)
	if err != nil {
		writeError(w, http.StatusUnprocessableEntity, err)
		return
	}
	writeJSON(w, http.StatusOK, p)
}

func (s *server) handleExecute(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, fmt.Errorf("execute requires POST"))
		return
	}
	req, err := parseRequest(r)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	res, err := s.eng.Execute(req)
	if err != nil {
		writeError(w, http.StatusUnprocessableEntity, err)
		return
	}
	writeJSON(w, http.StatusOK, res)
}

func (s *server) handleStats(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{
		"uptimeSeconds": time.Since(s.start).Seconds(),
		"engine":        s.eng.Stats(),
	})
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(v); err != nil {
		log.Printf("serve: encoding response: %v", err)
	}
}

func writeError(w http.ResponseWriter, code int, err error) {
	writeJSON(w, code, map[string]string{"error": err.Error()})
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "serve:", err)
	os.Exit(1)
}
