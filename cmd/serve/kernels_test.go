package main

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"regexp"
	"strings"
	"testing"
	"time"

	"repro/internal/engine"
	"repro/internal/harness"
	"repro/internal/wire"
)

// newServer builds a dedicated server (separate from the shared
// testServer) so budget and quota tests can configure engine limits
// without leaking them into every other handler test.
func newServer(t *testing.T, mutate func(*engine.Options)) *server {
	t.Helper()
	db, err := harness.Generate(harness.GenOptions{Programs: []string{"vecadd"}, MaxSizeIdx: 0})
	if err != nil {
		t.Fatal(err)
	}
	opts := engine.Options{Platform: "mc2", DB: db, Model: harness.FastModel()}
	if mutate != nil {
		mutate(&opts)
	}
	eng, err := engine.New(opts)
	if err != nil {
		t.Fatal(err)
	}
	rt, err := fleetOver(eng, "mc2")
	if err != nil {
		t.Fatal(err)
	}
	return &server{fleet: rt, start: time.Now(), intern: wire.NewIntern()}
}

// doReqT is doReq with an X-Tenant header.
func doReqT(t *testing.T, s *server, method, target, tenant string, body []byte) *httptest.ResponseRecorder {
	t.Helper()
	var r *http.Request
	if body != nil {
		r = httptest.NewRequest(method, target, bytes.NewReader(body))
	} else {
		r = httptest.NewRequest(method, target, nil)
	}
	if tenant != "" {
		r.Header.Set("X-Tenant", tenant)
	}
	w := httptest.NewRecorder()
	s.mux().ServeHTTP(w, r)
	return w
}

func uploadKernel(t *testing.T, s *server, tenant string, spec engine.KernelSpec) *httptest.ResponseRecorder {
	t.Helper()
	body, err := json.Marshal(spec)
	if err != nil {
		t.Fatal(err)
	}
	return doReqT(t, s, http.MethodPost, "/kernels", tenant, body)
}

const scaleSrc = `kernel void scale(global float* a, global float* out, int n) {
	int i = get_global_id(0);
	out[i] = a[i] * 2.0;
}`

// spinServeSrc loops forever; only a resource budget stops it.
const spinServeSrc = `kernel void spin(global float* out) {
	int i = 0;
	while (i < 2) {
		i = i - 1;
	}
	out[get_global_id(0)] = 1.0;
}`

// TestKernelUploadAndExecute: the upload happy path. POST /kernels
// compiles and registers the kernel; it serves /predict and /execute
// immediately under its tenant-qualified name.
func TestKernelUploadAndExecute(t *testing.T) {
	s := newServer(t, nil)
	w := uploadKernel(t, s, "", engine.KernelSpec{Name: "scale", Source: scaleSrc})
	if w.Code != http.StatusCreated {
		t.Fatalf("upload = %d: %s", w.Code, w.Body.String())
	}
	var info engine.KernelInfo
	if err := json.Unmarshal(w.Body.Bytes(), &info); err != nil {
		t.Fatal(err)
	}
	if info.Name != "public/scale" || info.Tenant != "public" || info.Kernel != "scale" {
		t.Fatalf("kernel info: %+v", info)
	}
	if len(info.SizeNs) == 0 || info.SizeNs[0] != 1024 {
		t.Fatalf("size family: %+v", info.SizeNs)
	}

	// Listed.
	w = doReq(t, s, http.MethodGet, "/kernels", nil)
	if w.Code != http.StatusOK || !strings.Contains(w.Body.String(), `"public/scale"`) {
		t.Fatalf("list = %d: %s", w.Code, w.Body.String())
	}

	// Served: predict then execute, like any built-in.
	if w := doReq(t, s, http.MethodGet, "/predict?program=public/scale&size=0", nil); w.Code != http.StatusOK {
		t.Fatalf("predict uploaded kernel = %d: %s", w.Code, w.Body.String())
	}
	w = doReq(t, s, http.MethodPost, "/execute?program=public/scale&size=0", nil)
	if w.Code != http.StatusOK {
		t.Fatalf("execute uploaded kernel = %d: %s", w.Code, w.Body.String())
	}
	var ex engine.Execution
	if err := json.Unmarshal(w.Body.Bytes(), &ex); err != nil {
		t.Fatal(err)
	}
	if ex.Program != "public/scale" {
		t.Fatalf("execution: %+v", ex)
	}

	// Same name again: 409.
	if w := uploadKernel(t, s, "", engine.KernelSpec{Name: "scale", Source: scaleSrc}); w.Code != http.StatusConflict {
		t.Fatalf("duplicate upload = %d, want 409", w.Code)
	}

	// Another tenant's namespace is disjoint: same local name is fine.
	w = uploadKernel(t, s, "alice", engine.KernelSpec{Name: "scale", Source: scaleSrc})
	if w.Code != http.StatusCreated {
		t.Fatalf("tenant upload = %d: %s", w.Code, w.Body.String())
	}
	if err := json.Unmarshal(w.Body.Bytes(), &info); err != nil {
		t.Fatal(err)
	}
	if info.Name != "alice/scale" || info.Tenant != "alice" {
		t.Fatalf("tenant kernel info: %+v", info)
	}
}

// TestKernelUploadRejectsBadSource: front-end failures answer 400 with
// the MiniCL line:column position so uploaders can fix their source.
func TestKernelUploadRejectsBadSource(t *testing.T) {
	s := newServer(t, nil)
	w := uploadKernel(t, s, "", engine.KernelSpec{
		Name:   "broken",
		Source: "kernel void broken(global float* out) {\n\tout[0] = ;\n}",
	})
	if w.Code != http.StatusBadRequest {
		t.Fatalf("bad source = %d, want 400: %s", w.Code, w.Body.String())
	}
	body := w.Body.String()
	if !strings.Contains(body, `"compile"`) {
		t.Fatalf("missing compile code: %s", body)
	}
	if !regexp.MustCompile(`\d+:\d+`).MatchString(body) {
		t.Fatalf("missing line:column position: %s", body)
	}

	// Missing fields are 400 too.
	if w := uploadKernel(t, s, "", engine.KernelSpec{Name: "x"}); w.Code != http.StatusBadRequest {
		t.Fatalf("missing source = %d, want 400", w.Code)
	}
	if w := uploadKernel(t, s, "", engine.KernelSpec{Name: "no/slash", Source: scaleSrc}); w.Code != http.StatusBadRequest {
		t.Fatalf("invalid name = %d, want 400", w.Code)
	}
}

// TestKernelQuota429: a tenant at its kernel cap gets 429 with a
// Retry-After hint; other tenants are unaffected.
func TestKernelQuota429(t *testing.T) {
	s := newServer(t, func(o *engine.Options) {
		o.Tenant = engine.TenantLimits{MaxKernels: 1}
	})
	if w := uploadKernel(t, s, "bob", engine.KernelSpec{Name: "one", Source: scaleSrc}); w.Code != http.StatusCreated {
		t.Fatalf("first upload = %d: %s", w.Code, w.Body.String())
	}
	w := uploadKernel(t, s, "bob", engine.KernelSpec{Name: "two", Source: scaleSrc})
	if w.Code != http.StatusTooManyRequests {
		t.Fatalf("over-quota upload = %d, want 429: %s", w.Code, w.Body.String())
	}
	if w.Header().Get("Retry-After") == "" {
		t.Fatal("429 without Retry-After header")
	}
	if !strings.Contains(w.Body.String(), `"quota"`) {
		t.Fatalf("missing quota code: %s", w.Body.String())
	}
	// A different tenant still has headroom.
	if w := uploadKernel(t, s, "carol", engine.KernelSpec{Name: "one", Source: scaleSrc}); w.Code != http.StatusCreated {
		t.Fatalf("other tenant upload = %d", w.Code)
	}
}

// TestBudgetStatusCodes: the three budget kinds are distinguishable by
// status code alone — steps 422, deadline 408, memory 413 — each with
// the structured budget payload.
func TestBudgetStatusCodes(t *testing.T) {
	t.Run("steps", func(t *testing.T) {
		s := newServer(t, func(o *engine.Options) { o.MaxSteps = 100_000 })
		if w := uploadKernel(t, s, "", engine.KernelSpec{Name: "spin", Source: spinServeSrc}); w.Code != http.StatusCreated {
			t.Fatalf("upload = %d: %s", w.Code, w.Body.String())
		}
		w := doReq(t, s, http.MethodPost, "/execute?program=public/spin&size=0", nil)
		if w.Code != http.StatusUnprocessableEntity {
			t.Fatalf("spin execute = %d, want 422: %s", w.Code, w.Body.String())
		}
		assertBudgetBody(t, w.Body.Bytes(), "budget:steps")
	})
	t.Run("deadline", func(t *testing.T) {
		s := newServer(t, func(o *engine.Options) { o.ExecTimeout = 100 * time.Millisecond })
		if w := uploadKernel(t, s, "", engine.KernelSpec{Name: "spin", Source: spinServeSrc}); w.Code != http.StatusCreated {
			t.Fatalf("upload = %d: %s", w.Code, w.Body.String())
		}
		w := doReq(t, s, http.MethodPost, "/execute?program=public/spin&size=0", nil)
		if w.Code != http.StatusRequestTimeout {
			t.Fatalf("spin execute = %d, want 408: %s", w.Code, w.Body.String())
		}
		assertBudgetBody(t, w.Body.Bytes(), "budget:deadline")
	})
	t.Run("memory", func(t *testing.T) {
		s := newServer(t, func(o *engine.Options) { o.MaxMemBytes = 64 })
		w := doReq(t, s, http.MethodPost, "/execute?program=vecadd&size=0", nil)
		if w.Code != http.StatusRequestEntityTooLarge {
			t.Fatalf("execute = %d, want 413: %s", w.Code, w.Body.String())
		}
		assertBudgetBody(t, w.Body.Bytes(), "budget:memory")
	})
}

func assertBudgetBody(t *testing.T, body []byte, code string) {
	t.Helper()
	var resp struct {
		Code  string `json:"code"`
		Spent int64  `json:"spent"`
		Limit int64  `json:"limit"`
	}
	if err := json.Unmarshal(body, &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Code != code {
		t.Fatalf("code = %q, want %q", resp.Code, code)
	}
	if resp.Limit <= 0 {
		t.Fatalf("budget payload missing limit: %s", body)
	}
}
