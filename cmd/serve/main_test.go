package main

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/engine"
	"repro/internal/fleet"
	"repro/internal/harness"
	"repro/internal/obs"
	"repro/internal/wire"
)

var (
	srvOnce sync.Once
	srvVal  *server
	srvErr  error
)

// fleetOver wraps an already-built engine in a single-shard router, the
// shape handler tests want: the engine is fixed, the routing layer is
// real.
func fleetOver(eng *engine.Engine, platform string) (*fleet.Router, error) {
	return fleet.New(fleet.Options{
		Platforms: []string{platform},
		NewEngine: func(string, int) (*engine.Engine, error) { return eng, nil },
	})
}

// testServer builds one adaptive server over a tiny database for every
// handler test.
func testServer(t *testing.T) *server {
	t.Helper()
	srvOnce.Do(func() {
		db, err := harness.Generate(harness.GenOptions{
			Programs: []string{"vecadd", "matmul"}, MaxSizeIdx: 1,
		})
		if err != nil {
			srvErr = err
			return
		}
		// Not t.TempDir(): the server outlives the first test that builds
		// it, so its log directory must not be tied to that test's
		// cleanup.
		dir, err := os.MkdirTemp("", "serve-obs-*")
		if err != nil {
			srvErr = err
			return
		}
		log, err := obs.Open(obs.Options{Dir: dir})
		if err != nil {
			srvErr = err
			return
		}
		eng, err := engine.New(engine.Options{
			Platform: "mc2", DB: db, Model: harness.FastModel(), ObsLog: log,
		})
		if err != nil {
			srvErr = err
			return
		}
		rt, err := fleetOver(eng, "mc2")
		if err != nil {
			srvErr = err
			return
		}
		srvVal = &server{fleet: rt, obsLog: log, start: time.Now(), intern: wire.NewIntern()}
	})
	if srvErr != nil {
		t.Fatal(srvErr)
	}
	return srvVal
}

func doReq(t *testing.T, s *server, method, target string, body []byte) *httptest.ResponseRecorder {
	t.Helper()
	var r *http.Request
	if body != nil {
		r = httptest.NewRequest(method, target, bytes.NewReader(body))
	} else {
		r = httptest.NewRequest(method, target, nil)
	}
	w := httptest.NewRecorder()
	s.mux().ServeHTTP(w, r)
	return w
}

// TestHandlersRejectWrongMethodsWith405 sweeps every endpoint with a
// method outside its set: all must answer 405 AND name the allowed
// methods in the Allow header.
func TestHandlersRejectWrongMethodsWith405(t *testing.T) {
	s := testServer(t)
	cases := []struct {
		method, target string
		wantAllow      string
	}{
		{http.MethodPost, "/healthz", "GET, HEAD"},
		{http.MethodDelete, "/predict", "GET, POST"},
		{http.MethodGet, "/predict/batch", "POST"},
		{http.MethodGet, "/execute", "POST"},
		{http.MethodDelete, "/kernels", "GET, POST"},
		{http.MethodPost, "/stats", "GET"},
		{http.MethodPut, "/models", "GET, POST"},
		{http.MethodDelete, "/retrain", "GET, POST"},
		{http.MethodPost, "/observations", "GET"},
	}
	for _, c := range cases {
		w := doReq(t, s, c.method, c.target, nil)
		if w.Code != http.StatusMethodNotAllowed {
			t.Errorf("%s %s = %d, want 405", c.method, c.target, w.Code)
		}
		if got := w.Header().Get("Allow"); got != c.wantAllow {
			t.Errorf("%s %s Allow = %q, want %q", c.method, c.target, got, c.wantAllow)
		}
	}
}

func TestExecuteBodyIsBounded(t *testing.T) {
	s := testServer(t)
	// A body over maxBodyBytes must be rejected as too large, not
	// buffered into the JSON decoder.
	huge := []byte(`{"program":"vecadd","junk":"` + strings.Repeat("x", maxBodyBytes+1024) + `"}`)
	w := doReq(t, s, http.MethodPost, "/execute", huge)
	if w.Code != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized body = %d, want 413", w.Code)
	}
	// A sane body still works end to end.
	w = doReq(t, s, http.MethodPost, "/execute", []byte(`{"program":"vecadd","size":0}`))
	if w.Code != http.StatusOK {
		t.Fatalf("execute = %d: %s", w.Code, w.Body.String())
	}
	var ex engine.Execution
	if err := json.Unmarshal(w.Body.Bytes(), &ex); err != nil {
		t.Fatal(err)
	}
	if !ex.Verified || ex.ModelVersion != 1 {
		t.Fatalf("execution: %+v", ex)
	}
}

func TestAdaptiveEndpointsRoundTrip(t *testing.T) {
	s := testServer(t)
	// Feed one execution so the log has something to report.
	if w := doReq(t, s, http.MethodPost, "/execute?program=vecadd&size=0", nil); w.Code != http.StatusOK {
		t.Fatalf("execute = %d", w.Code)
	}

	w := doReq(t, s, http.MethodGet, "/observations", nil)
	if w.Code != http.StatusOK {
		t.Fatalf("observations = %d", w.Code)
	}
	var obsResp struct {
		Enabled bool      `json:"enabled"`
		Log     obs.Stats `json:"log"`
	}
	if err := json.Unmarshal(w.Body.Bytes(), &obsResp); err != nil {
		t.Fatal(err)
	}
	if !obsResp.Enabled || obsResp.Log.Total < 1 || obsResp.Log.Labeled < 1 {
		t.Fatalf("observations: %+v", obsResp)
	}

	// Retrain status then trigger.
	if w := doReq(t, s, http.MethodGet, "/retrain", nil); w.Code != http.StatusOK {
		t.Fatalf("retrain status = %d", w.Code)
	}
	w = doReq(t, s, http.MethodPost, "/retrain", nil)
	if w.Code != http.StatusOK {
		t.Fatalf("retrain = %d: %s", w.Code, w.Body.String())
	}
	var res engine.RetrainResult
	if err := json.Unmarshal(w.Body.Bytes(), &res); err != nil {
		t.Fatal(err)
	}
	if !res.Promoted || res.NewVersion < 2 {
		t.Fatalf("retrain result: %+v", res)
	}

	// The registry lists the promoted version with lineage.
	w = doReq(t, s, http.MethodGet, "/models", nil)
	if w.Code != http.StatusOK {
		t.Fatalf("models = %d", w.Code)
	}
	var models struct {
		Current  int                   `json:"current"`
		Versions []engine.ModelVersion `json:"versions"`
	}
	if err := json.Unmarshal(w.Body.Bytes(), &models); err != nil {
		t.Fatal(err)
	}
	if models.Current != res.NewVersion || len(models.Versions) < 2 {
		t.Fatalf("models: %+v", models)
	}
	if v := models.Versions[len(models.Versions)-1]; v.Source != engine.ModelRetrained || v.Parent == 0 {
		t.Fatalf("promoted version lineage: %+v", v)
	}

	// Rollback via POST /models, then a bogus rollback.
	w = doReq(t, s, http.MethodPost, "/models", []byte(`{"rollback":1}`))
	if w.Code != http.StatusOK {
		t.Fatalf("rollback = %d: %s", w.Code, w.Body.String())
	}
	if err := json.Unmarshal(w.Body.Bytes(), &models); err != nil {
		t.Fatal(err)
	}
	if models.Current != 1 {
		t.Fatalf("post-rollback current = %d", models.Current)
	}
	if w := doReq(t, s, http.MethodPost, "/models", []byte(`{"rollback":99}`)); w.Code != http.StatusUnprocessableEntity {
		t.Fatalf("bogus rollback = %d", w.Code)
	}
	if w := doReq(t, s, http.MethodPost, "/models", []byte(`{}`)); w.Code != http.StatusBadRequest {
		t.Fatalf("empty rollback = %d", w.Code)
	}
}

// batchResponse mirrors the /predict/batch reply for assertions.
type batchResponse struct {
	Count   int           `json:"count"`
	Errors  int           `json:"errors"`
	Results []batchResult `json:"results"`
}

func TestPredictBatch(t *testing.T) {
	s := testServer(t)
	body := []byte(`{"requests":[
		{"program":"vecadd","size":0},
		{"program":"vecadd","size":1},
		{"program":"matmul"},
		{"program":"nope"},
		{"size":1}
	]}`)
	w := doReq(t, s, http.MethodPost, "/predict/batch", body)
	if w.Code != http.StatusOK {
		t.Fatalf("batch = %d: %s", w.Code, w.Body.String())
	}
	var resp batchResponse
	if err := json.Unmarshal(w.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Count != 5 || resp.Errors != 2 || len(resp.Results) != 5 {
		t.Fatalf("batch response: count=%d errors=%d len=%d", resp.Count, resp.Errors, len(resp.Results))
	}
	// Valid points priced; each matches the single-point endpoint.
	for i, target := range []string{"/predict?program=vecadd&size=0", "/predict?program=vecadd&size=1", "/predict?program=matmul"} {
		if resp.Results[i].Error != "" {
			t.Fatalf("point %d errored: %s", i, resp.Results[i].Error)
		}
		single := doReq(t, s, http.MethodGet, target, nil)
		var p engine.Prediction
		if err := json.Unmarshal(single.Body.Bytes(), &p); err != nil {
			t.Fatal(err)
		}
		if resp.Results[i].Prediction != p {
			t.Fatalf("point %d: batch %+v != single %+v", i, resp.Results[i].Prediction, p)
		}
	}
	// Bad points carry their own errors without failing the siblings.
	if resp.Results[3].Error == "" || resp.Results[4].Error == "" {
		t.Fatalf("bad points did not error: %+v", resp.Results[3:])
	}

	// An omitted size resolves to the program's default, like /predict.
	if resp.Results[2].SizeIdx < 0 {
		t.Fatalf("omitted size not defaulted: %+v", resp.Results[2])
	}

	// Empty and oversized batches are rejected.
	if w := doReq(t, s, http.MethodPost, "/predict/batch", []byte(`{"requests":[]}`)); w.Code != http.StatusBadRequest {
		t.Errorf("empty batch = %d, want 400", w.Code)
	}
	big := bytes.Repeat([]byte(`{"program":"vecadd"},`), maxBatch+1)
	huge := []byte(`{"requests":[` + strings.TrimSuffix(string(big), ",") + `]}`)
	if w := doReq(t, s, http.MethodPost, "/predict/batch", huge); w.Code != http.StatusBadRequest {
		t.Errorf("oversized batch = %d, want 400", w.Code)
	}
}

// TestDecodeRejectsTrailingGarbage: anything after the first JSON value
// in a POST body is a malformed request, not ignorable noise.
func TestDecodeRejectsTrailingGarbage(t *testing.T) {
	s := testServer(t)
	for _, c := range []struct{ target, body string }{
		{"/execute", `{"program":"vecadd","size":0}{"program":"matmul"}`},
		{"/execute", `{"program":"vecadd","size":0} trailing`},
		{"/predict", `{"program":"vecadd"}[1,2,3]`},
		{"/predict/batch", `{"requests":[{"program":"vecadd"}]}goodbye`},
		{"/models", `{"rollback":1}{"rollback":2}`},
	} {
		w := doReq(t, s, http.MethodPost, c.target, []byte(c.body))
		if w.Code != http.StatusBadRequest {
			t.Errorf("POST %s with trailing garbage = %d, want 400: %s", c.target, w.Code, w.Body.String())
		}
	}
	// A clean body still parses.
	if w := doReq(t, s, http.MethodPost, "/predict", []byte(`{"program":"vecadd","size":0}`)); w.Code != http.StatusOK {
		t.Errorf("clean body = %d: %s", w.Code, w.Body.String())
	}
}

// TestStrictModeRejectsUnknownFields: with -strict, schema typos fail
// loudly; without it they are tolerated (backward compatible default).
func TestStrictModeRejectsUnknownFields(t *testing.T) {
	lax := testServer(t)
	body := []byte(`{"program":"vecadd","siez":1}`)
	if w := doReq(t, lax, http.MethodPost, "/predict", body); w.Code != http.StatusOK {
		t.Fatalf("lax server rejected unknown field: %d", w.Code)
	}
	strict := &server{fleet: lax.fleet, obsLog: lax.obsLog, start: lax.start, strict: true, intern: lax.intern}
	if w := doReq(t, strict, http.MethodPost, "/predict", body); w.Code != http.StatusBadRequest {
		t.Fatalf("strict server accepted unknown field: %d", w.Code)
	}
	if w := doReq(t, strict, http.MethodPost, "/predict/batch",
		[]byte(`{"requests":[{"program":"vecadd","siez":1}]}`)); w.Code != http.StatusOK {
		t.Fatalf("strict batch = %d", w.Code)
	} else {
		var resp batchResponse
		if err := json.Unmarshal(w.Body.Bytes(), &resp); err != nil {
			t.Fatal(err)
		}
		if resp.Errors != 1 || resp.Results[0].Error == "" {
			t.Fatalf("strict batch did not flag the unknown field: %+v", resp)
		}
	}
	// Valid bodies still work in strict mode.
	if w := doReq(t, strict, http.MethodPost, "/predict", []byte(`{"program":"vecadd","size":1}`)); w.Code != http.StatusOK {
		t.Fatalf("strict server rejected a valid body: %d", w.Code)
	}
}

func TestPredictValidation(t *testing.T) {
	s := testServer(t)
	if w := doReq(t, s, http.MethodGet, "/predict", nil); w.Code != http.StatusBadRequest {
		t.Errorf("missing program = %d, want 400", w.Code)
	}
	if w := doReq(t, s, http.MethodGet, "/predict?program=vecadd&size=zap", nil); w.Code != http.StatusBadRequest {
		t.Errorf("bad size = %d, want 400", w.Code)
	}
	if w := doReq(t, s, http.MethodGet, "/predict?program=nope", nil); w.Code != http.StatusUnprocessableEntity {
		t.Errorf("unknown program = %d, want 422", w.Code)
	}
	w := doReq(t, s, http.MethodGet, "/predict?program=vecadd&size=1", nil)
	if w.Code != http.StatusOK {
		t.Fatalf("predict = %d", w.Code)
	}
	var p engine.Prediction
	if err := json.Unmarshal(w.Body.Bytes(), &p); err != nil {
		t.Fatal(err)
	}
	if p.Partition == "" || p.ModelVersion < 1 {
		t.Fatalf("prediction: %+v", p)
	}
}
