package main

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/engine"
	"repro/internal/fleet"
	"repro/internal/harness"
	"repro/internal/wire"
)

// fleetServer builds a real multi-shard server: lazily-created engines
// over a shared tiny database, one per (platform, shard), with the
// given admission config. This is the production wiring in miniature.
func fleetServer(t *testing.T, platforms []string, shards int, adm fleet.AdmissionConfig) *server {
	t.Helper()
	db, err := harness.Generate(harness.GenOptions{Programs: []string{"vecadd"}, MaxSizeIdx: 0})
	if err != nil {
		t.Fatal(err)
	}
	shared := engine.NewTenantTable()
	rt, err := fleet.New(fleet.Options{
		Platforms:         platforms,
		ShardsPerPlatform: shards,
		Admission:         adm,
		NewEngine: func(platform string, shard int) (*engine.Engine, error) {
			return engine.New(engine.Options{
				Platform: platform, DB: db, Model: harness.FastModel(),
				SharedTenants: shared,
			})
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	return &server{fleet: rt, start: time.Now(), intern: wire.NewIntern()}
}

// doWire posts a wire frame and returns the recorder.
func doWire(t *testing.T, s *server, target string, frame []byte) *httptest.ResponseRecorder {
	t.Helper()
	r := httptest.NewRequest(http.MethodPost, target, bytes.NewReader(frame))
	r.Header.Set("Content-Type", wire.ContentType)
	w := httptest.NewRecorder()
	s.mux().ServeHTTP(w, r)
	return w
}

// TestWireJSONPredictEquivalence: the binary protocol is an encoding,
// not a different API — the same predict request must produce the same
// prediction through both paths, field for field.
func TestWireJSONPredictEquivalence(t *testing.T) {
	s := testServer(t)

	wj := doReq(t, s, http.MethodGet, "/predict?program=vecadd&size=1", nil)
	if wj.Code != http.StatusOK {
		t.Fatalf("json predict = %d: %s", wj.Code, wj.Body.String())
	}
	var jp engine.Prediction
	if err := json.Unmarshal(wj.Body.Bytes(), &jp); err != nil {
		t.Fatal(err)
	}

	frame := wire.AppendPredictRequest(nil, &engine.Request{Program: "vecadd", SizeIdx: 1})
	ww := doWire(t, s, "/predict", frame)
	if ww.Code != http.StatusOK {
		t.Fatalf("wire predict = %d: %s", ww.Code, ww.Body.String())
	}
	if ct := ww.Header().Get("Content-Type"); ct != wire.ContentType {
		t.Fatalf("wire response Content-Type = %q", ct)
	}
	msg, payload, err := wire.ParseFrame(ww.Body.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if msg != wire.MsgPredictResp {
		t.Fatalf("msg = %d, want %d", msg, wire.MsgPredictResp)
	}
	var wp engine.Prediction
	if err := wire.DecodePrediction(payload, &wp); err != nil {
		t.Fatal(err)
	}
	if wp != jp {
		t.Errorf("wire prediction differs from JSON:\nwire: %+v\njson: %+v", wp, jp)
	}
}

// TestWireJSONBatchEquivalence: batches too, including per-point errors
// surviving with identical messages alongside good points.
func TestWireJSONBatchEquivalence(t *testing.T) {
	s := testServer(t)

	body := []byte(`{"requests":[{"program":"vecadd","size":0},{"program":"nope"},{"program":"matmul","size":1}]}`)
	wj := doReq(t, s, http.MethodPost, "/predict/batch", body)
	if wj.Code != http.StatusOK {
		t.Fatalf("json batch = %d: %s", wj.Code, wj.Body.String())
	}
	var jresp struct {
		Count   int `json:"count"`
		Errors  int `json:"errors"`
		Results []struct {
			engine.Prediction
			Error string `json:"error,omitempty"`
		} `json:"results"`
	}
	if err := json.Unmarshal(wj.Body.Bytes(), &jresp); err != nil {
		t.Fatal(err)
	}
	if jresp.Count != 3 || jresp.Errors != 1 {
		t.Fatalf("json batch count/errors = %d/%d: %s", jresp.Count, jresp.Errors, wj.Body.String())
	}

	reqs := []engine.Request{
		{Program: "vecadd", SizeIdx: 0},
		{Program: "nope", SizeIdx: -1},
		{Program: "matmul", SizeIdx: 1},
	}
	frame := wire.AppendBatchRequest(nil, reqs)
	ww := doWire(t, s, "/predict/batch", frame)
	if ww.Code != http.StatusOK {
		t.Fatalf("wire batch = %d: %s", ww.Code, ww.Body.String())
	}
	msg, payload, err := wire.ParseFrame(ww.Body.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if msg != wire.MsgBatchResp {
		t.Fatalf("msg = %d, want %d", msg, wire.MsgBatchResp)
	}
	items, errCount, err := wire.DecodeBatchResponse(payload)
	if err != nil {
		t.Fatal(err)
	}
	if len(items) != 3 || errCount != 1 {
		t.Fatalf("wire batch count/errors = %d/%d", len(items), errCount)
	}
	for i, it := range items {
		if it.OK != (jresp.Results[i].Error == "") {
			t.Fatalf("item %d: wire ok=%v, json error=%q", i, it.OK, jresp.Results[i].Error)
		}
		if it.OK && it.Pred != jresp.Results[i].Prediction {
			t.Errorf("item %d differs:\nwire: %+v\njson: %+v", i, it.Pred, jresp.Results[i].Prediction)
		}
		if !it.OK && it.Err != jresp.Results[i].Error {
			t.Errorf("item %d error: wire %q, json %q", i, it.Err, jresp.Results[i].Error)
		}
	}
}

// TestWireExecute: the execute path end to end over the binary
// protocol. Makespan is measured wall time, so only the deterministic
// fields are compared.
func TestWireExecute(t *testing.T) {
	s := testServer(t)
	frame := wire.AppendExecuteRequest(nil, &engine.Request{Program: "vecadd", SizeIdx: 0})
	ww := doWire(t, s, "/execute", frame)
	if ww.Code != http.StatusOK {
		t.Fatalf("wire execute = %d: %s", ww.Code, ww.Body.String())
	}
	msg, payload, err := wire.ParseFrame(ww.Body.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if msg != wire.MsgExecuteResp {
		t.Fatalf("msg = %d, want %d", msg, wire.MsgExecuteResp)
	}
	var x engine.Execution
	if err := wire.DecodeExecution(payload, &x); err != nil {
		t.Fatal(err)
	}
	if x.Program != "vecadd" || x.Platform != "mc2" {
		t.Errorf("execution: %+v", x.Prediction)
	}
	if !x.Verified {
		t.Errorf("execution not verified: %q", x.VerifyError)
	}
	if x.Makespan <= 0 {
		t.Errorf("makespan = %v", x.Makespan)
	}
}

// TestWireErrorFrames: engine and validation failures answer MsgError
// frames with the JSON path's status codes.
func TestWireErrorFrames(t *testing.T) {
	s := testServer(t)
	cases := []struct {
		name   string
		target string
		frame  []byte
		status int
		code   string
	}{
		{"unknown program", "/predict",
			wire.AppendPredictRequest(nil, &engine.Request{Program: "nope", SizeIdx: -1}),
			http.StatusUnprocessableEntity, "error"},
		{"missing program", "/predict",
			wire.AppendPredictRequest(nil, &engine.Request{SizeIdx: -1}),
			http.StatusBadRequest, "frame"},
		{"wrong msg type", "/predict",
			wire.AppendExecuteRequest(nil, &engine.Request{Program: "vecadd"}),
			http.StatusBadRequest, "frame"},
		{"garbage", "/predict", []byte{1, 2, 3},
			http.StatusBadRequest, "frame"},
		{"unknown platform", "/predict?platform=mc9",
			wire.AppendPredictRequest(nil, &engine.Request{Program: "vecadd"}),
			http.StatusNotFound, "platform"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			w := doWire(t, s, tc.target, tc.frame)
			if w.Code != tc.status {
				t.Fatalf("status = %d, want %d: %s", w.Code, tc.status, w.Body.String())
			}
			msg, payload, err := wire.ParseFrame(w.Body.Bytes())
			if err != nil || msg != wire.MsgError {
				t.Fatalf("error response not a MsgError frame: msg=%d err=%v", msg, err)
			}
			ef, err := wire.DecodeError(payload)
			if err != nil {
				t.Fatal(err)
			}
			if ef.Status != tc.status || ef.Code != tc.code {
				t.Errorf("error frame = %+v, want status %d code %q", ef, tc.status, tc.code)
			}
		})
	}
}

// TestShedThroughHandler: with the shard's only slot held, both
// protocols answer 429 with Retry-After and code "shed"; after release
// the same request succeeds.
func TestShedThroughHandler(t *testing.T) {
	s := fleetServer(t, []string{"mc2"}, 1,
		fleet.AdmissionConfig{MaxInflight: 1, MaxQueue: 0, RetryAfter: 3 * time.Second})
	sh, err := s.fleet.ShardFor("", "")
	if err != nil {
		t.Fatal(err)
	}
	permit, err := sh.Admit(context.Background())
	if err != nil {
		t.Fatal(err)
	}

	w := doReq(t, s, http.MethodGet, "/predict?program=vecadd&size=0", nil)
	if w.Code != http.StatusTooManyRequests {
		t.Fatalf("json shed = %d: %s", w.Code, w.Body.String())
	}
	if w.Header().Get("Retry-After") != "3" {
		t.Errorf("Retry-After = %q, want 3", w.Header().Get("Retry-After"))
	}
	if !strings.Contains(w.Body.String(), `"shed"`) {
		t.Errorf("missing shed code: %s", w.Body.String())
	}

	frame := wire.AppendPredictRequest(nil, &engine.Request{Program: "vecadd", SizeIdx: 0})
	ww := doWire(t, s, "/predict", frame)
	if ww.Code != http.StatusTooManyRequests {
		t.Fatalf("wire shed = %d", ww.Code)
	}
	if ww.Header().Get("Retry-After") != "3" {
		t.Errorf("wire Retry-After = %q, want 3", ww.Header().Get("Retry-After"))
	}
	msg, payload, err := wire.ParseFrame(ww.Body.Bytes())
	if err != nil || msg != wire.MsgError {
		t.Fatalf("shed response not MsgError: msg=%d err=%v", msg, err)
	}
	ef, err := wire.DecodeError(payload)
	if err != nil {
		t.Fatal(err)
	}
	if ef.Code != "shed" || ef.RetryAfterSecs != 3 {
		t.Errorf("error frame = %+v", ef)
	}

	permit.Release()
	if w := doReq(t, s, http.MethodGet, "/predict?program=vecadd&size=0", nil); w.Code != http.StatusOK {
		t.Fatalf("post-release predict = %d: %s", w.Code, w.Body.String())
	}

	// Shed requests are visible in /stats.
	w = doReq(t, s, http.MethodGet, "/stats", nil)
	var stats struct {
		Shards []fleet.ShardStats `json:"shards"`
	}
	if err := json.Unmarshal(w.Body.Bytes(), &stats); err != nil {
		t.Fatal(err)
	}
	if len(stats.Shards) != 1 || stats.Shards[0].Shed != 2 {
		t.Errorf("stats shards = %+v, want one shard with shed=2", stats.Shards)
	}
}

// TestMultiPlatformRouting: one process serving two platforms routes by
// the platform query parameter, keeps per-platform predictions honest,
// and 404s platforms it does not serve.
func TestMultiPlatformRouting(t *testing.T) {
	s := fleetServer(t, []string{"mc1", "mc2"}, 2, fleet.AdmissionConfig{})

	for _, p := range []string{"mc1", "mc2"} {
		w := doReq(t, s, http.MethodGet, "/predict?program=vecadd&size=0&platform="+p, nil)
		if w.Code != http.StatusOK {
			t.Fatalf("predict on %s = %d: %s", p, w.Code, w.Body.String())
		}
		var pred engine.Prediction
		if err := json.Unmarshal(w.Body.Bytes(), &pred); err != nil {
			t.Fatal(err)
		}
		if pred.Platform != p {
			t.Errorf("platform %s answered prediction for %q", p, pred.Platform)
		}
	}

	// Default platform is the first configured.
	w := doReq(t, s, http.MethodGet, "/predict?program=vecadd&size=0", nil)
	var pred engine.Prediction
	if err := json.Unmarshal(w.Body.Bytes(), &pred); err != nil {
		t.Fatal(err)
	}
	if pred.Platform != "mc1" {
		t.Errorf("default platform = %q, want mc1", pred.Platform)
	}

	// Unserved platform: 404, not 500.
	if w := doReq(t, s, http.MethodGet, "/predict?program=vecadd&platform=mc9", nil); w.Code != http.StatusNotFound {
		t.Fatalf("unknown platform = %d, want 404", w.Code)
	}

	// Different tenants may land on different shards, but the same
	// tenant always lands on the same one.
	var first *fleet.Shard
	for i := 0; i < 10; i++ {
		sh, err := s.fleet.ShardFor("mc1", "alice")
		if err != nil {
			t.Fatal(err)
		}
		if first == nil {
			first = sh
		} else if sh != first {
			t.Fatal("tenant alice routed to two shards")
		}
	}

	// /healthz lists both platforms.
	w = doReq(t, s, http.MethodGet, "/healthz", nil)
	if !strings.Contains(w.Body.String(), `"mc1"`) || !strings.Contains(w.Body.String(), `"mc2"`) {
		t.Errorf("healthz missing platforms: %s", w.Body.String())
	}

	// /stats reports per-shard blocks tagged with platform and index.
	w = doReq(t, s, http.MethodGet, "/stats", nil)
	var stats struct {
		Platforms         []string           `json:"platforms"`
		ShardsPerPlatform int                `json:"shardsPerPlatform"`
		Shards            []fleet.ShardStats `json:"shards"`
	}
	if err := json.Unmarshal(w.Body.Bytes(), &stats); err != nil {
		t.Fatal(err)
	}
	if len(stats.Platforms) != 2 || stats.ShardsPerPlatform != 2 {
		t.Errorf("stats header = %+v", stats)
	}
	seen := map[string]bool{}
	for _, sh := range stats.Shards {
		seen[sh.Platform] = true
	}
	if !seen["mc1"] || !seen["mc2"] {
		t.Errorf("stats missing a platform's shards: %+v", stats.Shards)
	}
}
