package main

// Binary wire protocol support: POST bodies with Content-Type
// application/x-repro-wire are internal/wire frames instead of JSON,
// and responses are frames too. The hot path is allocation-free warm:
// request bodies and response frames build in pooled buffers, request
// program names intern to long-lived strings, and predictions fill
// pooled structs in place.

import (
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"sync"

	"repro/internal/engine"
	"repro/internal/exec"
	"repro/internal/fleet"
	"repro/internal/wire"
)

// isWire reports whether the request negotiated the binary protocol.
func isWire(r *http.Request) bool {
	ct := r.Header.Get("Content-Type")
	if i := strings.IndexByte(ct, ';'); i >= 0 {
		ct = ct[:i]
	}
	return strings.TrimSpace(ct) == wire.ContentType
}

// wireBuf is one request's scratch: the body bytes in, the response
// frame out.
type wireBuf struct {
	in  []byte
	out []byte
}

var wireBufPool = sync.Pool{New: func() any {
	return &wireBuf{in: make([]byte, 0, 4096), out: make([]byte, 0, 4096)}
}}

// maxPooledWireBuf caps the capacity a buffer may carry back into the
// pool — same discipline as maxPooledResponse for JSON.
const maxPooledWireBuf = 256 << 10

func getWireBuf() *wireBuf { return wireBufPool.Get().(*wireBuf) }

func putWireBuf(b *wireBuf) {
	if cap(b.in) <= maxPooledWireBuf && cap(b.out) <= maxPooledWireBuf {
		wireBufPool.Put(b)
	}
}

// readWireBody reads the whole (bounded) request body into buf's input
// slice, growing it amortized-once.
func readWireBody(w http.ResponseWriter, r *http.Request, b *wireBuf) error {
	r.Body = http.MaxBytesReader(w, r.Body, maxBodyBytes)
	b.in = b.in[:0]
	for {
		if len(b.in) == cap(b.in) {
			b.in = append(b.in, 0)[:len(b.in)]
		}
		n, err := r.Body.Read(b.in[len(b.in):cap(b.in)])
		b.in = b.in[:len(b.in)+n]
		if err == io.EOF {
			return nil
		}
		if err != nil {
			return err
		}
	}
}

// writeWireFrame sends a complete frame with the wire Content-Type.
func writeWireFrame(w http.ResponseWriter, status int, frame []byte) {
	w.Header().Set("Content-Type", wire.ContentType)
	w.WriteHeader(status)
	w.Write(frame)
}

// writeWireError answers with a MsgError frame. retrySecs > 0 also sets
// the Retry-After header, mirroring the JSON error shape.
func writeWireError(w http.ResponseWriter, status int, code, msg string, retrySecs int) {
	if retrySecs > 0 {
		w.Header().Set("Retry-After", strconv.Itoa(retrySecs))
	}
	frame := wire.AppendError(nil, status, code, msg, retrySecs)
	writeWireFrame(w, status, frame)
}

// writeWireEngineError is writeEngineError for the binary protocol:
// identical status/code mapping, MsgError frame body.
func writeWireEngineError(w http.ResponseWriter, err error) {
	var be *exec.BudgetError
	var qe *engine.QuotaError
	var ce *engine.CompileError
	var se *fleet.ShedError
	switch {
	case errors.As(err, &be):
		status := http.StatusUnprocessableEntity
		switch be.Kind {
		case exec.BudgetMemory:
			status = http.StatusRequestEntityTooLarge
		case exec.BudgetDeadline:
			status = http.StatusRequestTimeout
		}
		writeWireError(w, status, "budget:"+be.Kind, err.Error(), 0)
	case errors.As(err, &qe):
		writeWireError(w, http.StatusTooManyRequests, "quota", err.Error(), retryAfterSecs(qe.RetryAfter))
	case errors.As(err, &se):
		writeWireError(w, http.StatusTooManyRequests, "shed", err.Error(), retryAfterSecs(se.RetryAfter))
	case errors.As(err, &ce):
		writeWireError(w, http.StatusBadRequest, "compile", err.Error(), 0)
	case errors.Is(err, engine.ErrKernelExists):
		writeWireError(w, http.StatusConflict, "exists", err.Error(), 0)
	case errors.Is(err, engine.ErrInvalidKernel):
		writeWireError(w, http.StatusBadRequest, "invalid", err.Error(), 0)
	default:
		writeWireError(w, http.StatusUnprocessableEntity, "error", err.Error(), 0)
	}
}

// decodeWireRequest reads the body and decodes a single-request frame
// of the wanted type. Returns false with the response already written
// on failure.
func (s *server) decodeWireRequest(w http.ResponseWriter, r *http.Request, b *wireBuf, want byte, req *engine.Request) bool {
	if err := readWireBody(w, r, b); err != nil {
		writeWireError(w, bodyErrStatus(err), "body", err.Error(), 0)
		return false
	}
	msg, payload, err := wire.ParseFrame(b.in)
	if err != nil {
		writeWireError(w, http.StatusBadRequest, "frame", err.Error(), 0)
		return false
	}
	if msg != want {
		writeWireError(w, http.StatusBadRequest, "frame",
			fmt.Sprintf("unexpected message type %d (want %d)", msg, want), 0)
		return false
	}
	if err := wire.DecodePredictRequest(payload, req, s.intern); err != nil {
		writeWireError(w, http.StatusBadRequest, "frame", err.Error(), 0)
		return false
	}
	if req.Program == "" {
		writeWireError(w, http.StatusBadRequest, "frame", "missing required parameter: program", 0)
		return false
	}
	return true
}

func (s *server) wirePredict(w http.ResponseWriter, r *http.Request, sh *fleet.Shard) {
	b := getWireBuf()
	defer putWireBuf(b)
	var req engine.Request
	if !s.decodeWireRequest(w, r, b, wire.MsgPredictReq, &req) {
		return
	}
	p := predPool.Get().(*engine.Prediction)
	defer predPool.Put(p)
	if err := sh.Engine().PredictInto(req, p); err != nil {
		writeWireEngineError(w, err)
		return
	}
	b.out = wire.AppendPrediction(b.out[:0], p)
	writeWireFrame(w, http.StatusOK, b.out)
}

func (s *server) wirePredictBatch(w http.ResponseWriter, r *http.Request, sh *fleet.Shard) {
	b := getWireBuf()
	defer putWireBuf(b)
	if err := readWireBody(w, r, b); err != nil {
		writeWireError(w, bodyErrStatus(err), "body", err.Error(), 0)
		return
	}
	msg, payload, err := wire.ParseFrame(b.in)
	if err != nil {
		writeWireError(w, http.StatusBadRequest, "frame", err.Error(), 0)
		return
	}
	if msg != wire.MsgBatchReq {
		writeWireError(w, http.StatusBadRequest, "frame",
			fmt.Sprintf("unexpected message type %d (want %d)", msg, wire.MsgBatchReq), 0)
		return
	}
	it, err := wire.DecodeBatchRequest(payload)
	if err != nil {
		writeWireError(w, http.StatusBadRequest, "frame", err.Error(), 0)
		return
	}
	if it.Count() == 0 {
		writeWireError(w, http.StatusBadRequest, "frame", "empty batch", 0)
		return
	}
	if it.Count() > maxBatch {
		writeWireError(w, http.StatusBadRequest, "frame",
			fmt.Sprintf("batch of %d exceeds the %d-point limit", it.Count(), maxBatch), 0)
		return
	}
	p := predPool.Get().(*engine.Prediction)
	defer predPool.Put(p)
	var enc wire.BatchEncoder
	enc.Begin(b.out[:0])
	var req engine.Request
	i := -1
	for it.Next(&req, s.intern) {
		i++
		if req.Program == "" {
			enc.Error(fmt.Sprintf("request %d: missing required parameter: program", i))
			continue
		}
		if err := sh.Engine().PredictInto(req, p); err != nil {
			enc.Error(fmt.Sprintf("request %d: %v", i, err))
			continue
		}
		enc.Prediction(p)
	}
	if err := it.Err(); err != nil {
		// Malformed mid-batch: nothing has been written yet, so the whole
		// request can still fail cleanly.
		writeWireError(w, http.StatusBadRequest, "frame", err.Error(), 0)
		return
	}
	b.out = enc.Finish()
	writeWireFrame(w, http.StatusOK, b.out)
}

func (s *server) wireExecute(w http.ResponseWriter, r *http.Request, sh *fleet.Shard) {
	b := getWireBuf()
	defer putWireBuf(b)
	var req engine.Request
	if !s.decodeWireRequest(w, r, b, wire.MsgExecuteReq, &req) {
		return
	}
	req.Tenant = tenantOf(r)
	res, err := sh.Engine().Execute(r.Context(), req)
	if err != nil {
		writeWireEngineError(w, err)
		return
	}
	b.out = wire.AppendExecution(b.out[:0], res)
	writeWireFrame(w, http.StatusOK, b.out)
}
