#!/usr/bin/env sh
# alloc_smoke.sh — allocation-regression gate for the serving hot path.
# Runs the pinned hot-path benchmarks (prediction, and the binary wire
# codec that frames it on the network) with -benchmem and fails if any
# of them reports a nonzero allocs/op: a regression here silently puts
# the garbage collector back between requests. The AllocsPerRun unit
# tests (TestArtifactPredictZeroAllocs, TestEnginePredictIntoZeroAllocs)
# pin the same property per call; this gate covers the sustained-loop
# view that CI publishes in benchmark output. Used by CI, runnable
# locally:
#
#   scripts/alloc_smoke.sh
set -eu
cd "$(dirname "$0")/.."

PINNED='BenchmarkArtifactPredict|BenchmarkEnginePredictInto$|BenchmarkWire'

out="$(go test -run='^$' -bench="$PINNED" -benchmem -benchtime=100x \
	./internal/ml/ ./internal/engine/ ./internal/wire/)"
printf '%s\n' "$out"

printf '%s\n' "$out" | awk '
	/^Benchmark/ {
		for (i = 2; i <= NF; i++) {
			if ($(i) == "allocs/op" && $(i - 1) + 0 != 0) {
				printf "alloc_smoke: allocation regression: %s\n", $0
				bad = 1
			}
		}
		n++
	}
	END {
		if (n == 0) { print "alloc_smoke: no pinned benchmarks ran" > "/dev/stderr"; exit 1 }
		if (bad) { exit 1 }
		printf "alloc_smoke: %d pinned benchmarks, all 0 allocs/op\n", n
	}'
