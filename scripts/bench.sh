#!/usr/bin/env sh
# Runs the tracked performance benchmarks and writes their ns/op as JSON,
# so successive PRs accumulate a machine-readable perf trajectory. The
# default output name is dated (BENCH_<UTC timestamp>.json): each run
# adds a new point instead of overwriting the last one — pass an explicit
# path (as CI does) to pin the name.
#
# Usage:
#   scripts/bench.sh [output.json]
#
# Environment:
#   BENCHTIME  go test -benchtime value (default 1s; use 1x for a smoke run)
#
# Compare two revisions with benchstat:
#   go test -run='^$' -bench="$PATTERN" -count=10 . > old.txt   (on main)
#   go test -run='^$' -bench="$PATTERN" -count=10 . > new.txt   (on the PR)
#   benchstat old.txt new.txt
set -eu

OUT="${1:-BENCH_$(date -u +%Y%m%d-%H%M%S).json}"
BENCHTIME="${BENCHTIME:-1s}"

# The tracked set: pricing (naive vs prefix range queries, full-space
# pricing), barrier execution (spawn vs pooled vs lockstep), and the
# end-to-end scheduling-core paths.
PATTERN='BenchmarkPricePartition|BenchmarkBarrierKernel|BenchmarkPartitionPricing|BenchmarkKernelExecution|BenchmarkOracleSearch|BenchmarkChunkedExecution'

cd "$(dirname "$0")/.."

go test -run='^$' -bench="$PATTERN" -benchtime="$BENCHTIME" . |
	awk -v out="$OUT" -v ts="$(date -u +%Y-%m-%dT%H:%M:%SZ)" '
	/^Benchmark/ && / ns\/op/ {
		name = $1
		sub(/-[0-9]+$/, "", name)           # strip -GOMAXPROCS suffix
		for (i = 2; i <= NF; i++) {
			if ($(i) == "ns/op") { ns = $(i - 1) }
		}
		entries[++n] = sprintf("    {\"name\": \"%s\", \"ns_per_op\": %s}", name, ns)
	}
	/^(goos|goarch|cpu):/ { meta[$1] = substr($0, index($0, " ") + 1) }
	END {
		if (n == 0) { print "bench.sh: no benchmark results parsed" > "/dev/stderr"; exit 1 }
		printf "{\n" > out
		printf "  \"timestamp\": \"%s\",\n", ts >> out
		printf "  \"goos\": \"%s\",\n", meta["goos:"] >> out
		printf "  \"goarch\": \"%s\",\n", meta["goarch:"] >> out
		printf "  \"cpu\": \"%s\",\n", meta["cpu:"] >> out
		printf "  \"benchmarks\": [\n" >> out
		for (i = 1; i <= n; i++) {
			printf "%s%s\n", entries[i], (i < n ? "," : "") >> out
		}
		printf "  ]\n}\n" >> out
		print "wrote " out " (" n " benchmarks)"
	}'
