#!/usr/bin/env sh
# Runs the tracked performance benchmarks and writes their ns/op — plus
# serving-throughput metrics from short cmd/loadgen runs against a real
# cmd/serve process (JSON and binary wire protocol side by side, and an
# admission-control overload sweep) — as JSON, so successive PRs
# accumulate a machine-readable perf trajectory. The default output
# name is dated
# (BENCH_<UTC timestamp>.json): each run adds a new point instead of
# overwriting the last one — pass an explicit path (as CI does) to pin
# the name.
#
# Usage:
#   scripts/bench.sh [output.json]
#
# Environment:
#   BENCHTIME         go test -benchtime value (default 1s; use 1x for a smoke run)
#   SERVE_BENCH       set to 0 to skip the serving-throughput section
#   LOADGEN_DURATION  loadgen measurement window (default 2s)
#   LOADGEN_WORKERS   loadgen concurrency (default 4)
#
# Compare two revisions with benchstat:
#   go test -run='^$' -bench="$PATTERN" -count=10 . > old.txt   (on main)
#   go test -run='^$' -bench="$PATTERN" -count=10 . > new.txt   (on the PR)
#   benchstat old.txt new.txt
set -eu

OUT="${1:-BENCH_$(date -u +%Y%m%d-%H%M%S).json}"
BENCHTIME="${BENCHTIME:-1s}"
SERVE_BENCH="${SERVE_BENCH:-1}"
LOADGEN_DURATION="${LOADGEN_DURATION:-2s}"
LOADGEN_WORKERS="${LOADGEN_WORKERS:-4}"

# The tracked set: pricing (naive vs prefix range queries, full-space
# pricing), barrier execution (spawn vs pooled vs lockstep), the
# end-to-end scheduling-core paths, and the kernel execution tiers
# (closure-tree interpreter vs bytecode VM vs SIMT vector tier, plus
# fused-vs-unfused). BenchmarkKernelExec's vec/vecv1 leg pair is the
# tracked v1-vs-v2 comparison for the vector tier: vecv1 runs the same
# kernels with uniform scalarization and divergence re-convergence
# disabled (REPRO_VEC_V1), so the ratio is the v2 win at a glance.
PATTERN='BenchmarkPricePartition|BenchmarkBarrierKernel|BenchmarkPartitionPricing|BenchmarkKernelExecution|BenchmarkKernelExec/|BenchmarkKernelExecFusion|BenchmarkOracleSearch|BenchmarkChunkedExecution'

cd "$(dirname "$0")/.."

tmp="$(mktemp -d)"
serve_pid=""
cleanup() {
	[ -n "$serve_pid" ] && kill "$serve_pid" 2>/dev/null || true
	rm -rf "$tmp"
}
trap cleanup EXIT

# --- go test benchmarks -> entries + metadata fragments -----------------
go test -run='^$' -bench="$PATTERN" -benchtime="$BENCHTIME" . |
	awk -v entries="$tmp/entries" -v meta="$tmp/meta" '
	/^Benchmark/ && / ns\/op/ {
		name = $1
		sub(/-[0-9]+$/, "", name)           # strip -GOMAXPROCS suffix
		for (i = 2; i <= NF; i++) {
			if ($(i) == "ns/op") { ns = $(i - 1) }
		}
		printf "%s    {\"name\": \"%s\", \"ns_per_op\": %s}", (n++ ? ",\n" : ""), name, ns >> entries
	}
	/^(goos|goarch|cpu):/ {
		key = substr($1, 1, length($1) - 1)
		printf "  \"%s\": \"%s\",\n", key, substr($0, index($0, " ") + 1) >> meta
	}
	END {
		if (n == 0) { print "bench.sh: no benchmark results parsed" > "/dev/stderr"; exit 1 }
		printf "\n" >> entries
	}'

# --- serving throughput: train tiny db, serve, loadgen ------------------
if [ "$SERVE_BENCH" != "0" ]; then
	echo "bench.sh: measuring serving throughput (loadgen ${LOADGEN_DURATION} x ${LOADGEN_WORKERS} workers)"
	go build -o "$tmp/train" ./cmd/train
	go build -o "$tmp/serve" ./cmd/serve
	go build -o "$tmp/loadgen" ./cmd/loadgen
	"$tmp/train" -out "$tmp/db.json" -model-out "$tmp/models" -model knn \
		-programs vecadd,matmul -maxsize 1 -quiet
	# PID-derived port avoids collisions between concurrent runs (and
	# with anything squatting on a fixed default); override if needed.
	port="${BENCH_PORT:-$((18100 + $$ % 800))}"
	"$tmp/serve" -addr "127.0.0.1:$port" -db "$tmp/db.json" -platform mc2 \
		-models "$tmp/models" -model knn -warm vecadd >"$tmp/serve.log" 2>&1 &
	serve_pid=$!
	i=0
	while ! "$tmp/loadgen" -addr "http://127.0.0.1:$port" -program vecadd -size 1 \
		-workers 1 -duration 50ms -warmup 0s >/dev/null 2>&1; do
		i=$((i + 1))
		[ "$i" -ge 100 ] && { echo "bench.sh: serve did not come up"; exit 1; }
		kill -0 "$serve_pid" 2>/dev/null || { echo "bench.sh: serve died"; cat "$tmp/serve.log"; exit 1; }
		sleep 0.1
	done
	"$tmp/loadgen" -addr "http://127.0.0.1:$port" -program vecadd -size 1 \
		-workers "$LOADGEN_WORKERS" -duration "$LOADGEN_DURATION" -out "$tmp/predict.json"
	"$tmp/loadgen" -addr "http://127.0.0.1:$port" -program vecadd -size 1 -batch 64 \
		-workers "$LOADGEN_WORKERS" -duration "$LOADGEN_DURATION" -out "$tmp/batch.json"
	# Same endpoints over the compact binary wire protocol: the JSON/wire
	# pair in one document is the apples-to-apples protocol comparison.
	"$tmp/loadgen" -addr "http://127.0.0.1:$port" -program vecadd -size 1 -wire \
		-workers "$LOADGEN_WORKERS" -duration "$LOADGEN_DURATION" -out "$tmp/predict_wire.json"
	"$tmp/loadgen" -addr "http://127.0.0.1:$port" -program vecadd -size 1 -batch 64 -wire \
		-workers "$LOADGEN_WORKERS" -duration "$LOADGEN_DURATION" -out "$tmp/batch_wire.json"
	kill "$serve_pid" 2>/dev/null || true
	wait "$serve_pid" 2>/dev/null || true
	serve_pid=""

	# --- overload: admission control under an execute-heavy sweep -------
	# A deliberately small serve (4 procs, one admitted execute + one
	# queued per shard, 60ms p99 target) swept with rising concurrency:
	# low worker counts are admitted untouched, high ones shed with 429
	# instead of queueing without bound. The sweep lands in the document
	# so the shed/admitted trajectory is tracked like any benchmark.
	echo "bench.sh: measuring admission-control overload sweep"
	GOMAXPROCS=4 "$tmp/serve" -addr "127.0.0.1:$port" -db "$tmp/db.json" -platform mc2 \
		-models "$tmp/models" -model knn -warm vecadd \
		-admit-inflight 2 -admit-queue 2 -target-p99 60ms >"$tmp/serve2.log" 2>&1 &
	serve_pid=$!
	i=0
	while ! "$tmp/loadgen" -addr "http://127.0.0.1:$port" -program vecadd -size 1 \
		-workers 1 -duration 50ms -warmup 0s >/dev/null 2>&1; do
		i=$((i + 1))
		[ "$i" -ge 100 ] && { echo "bench.sh: overload serve did not come up"; exit 1; }
		kill -0 "$serve_pid" 2>/dev/null || { echo "bench.sh: overload serve died"; cat "$tmp/serve2.log"; exit 1; }
		sleep 0.1
	done
	"$tmp/loadgen" -addr "http://127.0.0.1:$port" -program vecadd -size 1 \
		-endpoint /execute -sweep 1,4,16 -duration "$LOADGEN_DURATION" \
		-out "$tmp/overload.json"
	kill "$serve_pid" 2>/dev/null || true
	wait "$serve_pid" 2>/dev/null || true
	serve_pid=""
fi

# --- assemble the final document ---------------------------------------
{
	printf '{\n'
	printf '  "timestamp": "%s",\n' "$(date -u +%Y-%m-%dT%H:%M:%SZ)"
	cat "$tmp/meta"
	printf '  "benchmarks": [\n'
	cat "$tmp/entries"
	printf '  ]'
	if [ -s "$tmp/predict.json" ]; then
		printf ',\n  "serving": {\n'
		printf '    "predict": %s,\n' "$(tr -d '\n' <"$tmp/predict.json" | tr -s ' ')"
		printf '    "predictBatch": %s,\n' "$(tr -d '\n' <"$tmp/batch.json" | tr -s ' ')"
		printf '    "predictWire": %s,\n' "$(tr -d '\n' <"$tmp/predict_wire.json" | tr -s ' ')"
		printf '    "predictBatchWire": %s\n' "$(tr -d '\n' <"$tmp/batch_wire.json" | tr -s ' ')"
		printf '  }'
	fi
	if [ -s "$tmp/overload.json" ]; then
		printf ',\n  "overload": %s' "$(tr -d '\n' <"$tmp/overload.json" | tr -s ' ')"
	fi
	printf '\n}\n'
} >"$OUT"

# The document must parse — catch assembly bugs before they land in the
# trajectory.
if command -v python3 >/dev/null 2>&1; then
	python3 -c "import json,sys; json.load(open('$OUT'))" || { echo "bench.sh: $OUT is not valid JSON"; exit 1; }
fi
n="$(grep -c '"name"' "$OUT" || true)"
echo "wrote $OUT ($n benchmarks$([ -s "$tmp/predict.json" ] && printf ', serving metrics included'))"
