#!/usr/bin/env bash
# serve_smoke.sh — end-to-end deployment smoke test: train a tiny
# database with model artifacts, launch cmd/serve against it in adaptive
# mode, exercise /healthz, /predict, /execute and /stats, then drive the
# closed loop — executions for a size ABSENT from the seed database are
# observed (/observations), retrained (/retrain), and the promoted model
# version serves subsequent predictions (/models, modelVersion) without
# a restart — and finally verify clean shutdown on SIGTERM. A second
# serve instance then exercises the untrusted-kernel path: upload via
# POST /kernels, execute, an infinite-loop kernel killed by the step
# budget, tenant quota rejection (429 + Retry-After), and idle-program
# eviction with transparent recompile. A third instance exercises the
# fleet path: -platforms mc1,mc2 with sharded engines, per-platform
# routing and per-shard /stats, the compact binary wire protocol, a
# mixed -mix workload, and admission control shedding overload with
# 429 + Retry-After. Used by CI and runnable locally:
#
#   scripts/serve_smoke.sh [port]
set -euo pipefail
cd "$(dirname "$0")/.."

port="${1:-18090}"
work="$(mktemp -d)"
pid=""
cleanup() {
  [ -n "$pid" ] && kill -9 "$pid" 2>/dev/null || true
  rm -rf "$work"
}
trap cleanup EXIT

go build -o "$work/train" ./cmd/train
go build -o "$work/serve" ./cmd/serve
go build -o "$work/loadgen" ./cmd/loadgen

echo "== training tiny database + artifacts =="
"$work/train" -out "$work/db.json" -model-out "$work/models" -model knn \
  -programs vecadd,matmul -maxsize 1 -quiet

test -f "$work/models/mc2.json" || { echo "FAIL: no mc2 model artifact"; exit 1; }

echo "== launching serve (adaptive, SIMT vector execution tier) =="
"$work/serve" -addr "127.0.0.1:$port" -db "$work/db.json" -platform mc2 \
  -models "$work/models" -model knn -warm vecadd -exec-tier vec \
  -obs "$work/obslog" -adaptive -retrain-interval 1h -retrain-min 1 &
pid=$!

base="http://127.0.0.1:$port"
for i in $(seq 1 100); do
  curl -fsS "$base/healthz" >/dev/null 2>&1 && break
  kill -0 "$pid" 2>/dev/null || { echo "FAIL: serve died during startup"; exit 1; }
  sleep 0.1
done

echo "== healthz =="
curl -fsS "$base/healthz" | tee "$work/healthz.json"
grep -q '"status": "ok"' "$work/healthz.json"

echo "== predict =="
curl -fsS "$base/predict?program=vecadd&size=1" | tee "$work/predict.json"
grep -q '"partition"' "$work/predict.json"
grep -q '"model": "knn5"' "$work/predict.json"

echo "== predict (repeat, warm) =="
curl -fsS "$base/predict?program=vecadd&size=1" >/dev/null

echo "== execute =="
curl -fsS -X POST "$base/execute?program=matmul&size=0" | tee "$work/execute.json"
grep -q '"verified": true' "$work/execute.json"

echo "== execute (JSON body) =="
curl -fsS -X POST -H 'Content-Type: application/json' \
  -d '{"program":"vecadd","size":0}' "$base/execute" | grep -q '"verified": true'

echo "== stats: artifact loaded, zero trainings, warm caches, vec tier =="
curl -fsS "$base/stats" | tee "$work/stats.json"
grep -q '"trainings": 0' "$work/stats.json"
grep -q '"artifactLoads": 1' "$work/stats.json"
grep -q '"execTier": "vec"' "$work/stats.json"

echo "== vector tier: a divergent kernel re-converges and /stats counts it =="
div_src='kernel void diverge(global float* a, global float* out, int n) { int i = get_global_id(0); float x = a[i]; if (x > 0.5f) { out[i] = sqrt(x) * 2.0f; } else { out[i] = x + 1.0f; } }'
curl -fsS -X POST -H 'Content-Type: application/json' \
  -d "{\"name\":\"divergent\",\"source\":\"$div_src\"}" "$base/kernels" | tee "$work/divkernel.json"
grep -q '"tier": "vec"' "$work/divkernel.json"
curl -fsS -X POST "$base/execute?program=public/divergent&size=0" >/dev/null
curl -fsS "$base/stats" | tee "$work/stats-vec.json"
grep -q '"vecDivergences"' "$work/stats-vec.json"
grep -q '"vecScalarBails"' "$work/stats-vec.json"
grep -Eq '"vecReconverges": [1-9]' "$work/stats-vec.json" ||
  { echo "FAIL: divergent kernel recorded no re-convergences"; exit 1; }

echo "== predict/batch: N points in one request =="
curl -fsS -X POST -H 'Content-Type: application/json' \
  -d '{"requests":[{"program":"vecadd","size":0},{"program":"vecadd","size":1},{"program":"bogus"}]}' \
  "$base/predict/batch" | tee "$work/batch.json"
grep -q '"count": 3' "$work/batch.json"
grep -q '"errors": 1' "$work/batch.json"
grep -q '"partition"' "$work/batch.json"

echo "== bad request handling =="
code=$(curl -s -o /dev/null -w '%{http_code}' "$base/predict")
[ "$code" = "400" ] || { echo "FAIL: missing program returned $code"; exit 1; }

echo "== trailing garbage after the JSON body is rejected =="
code=$(curl -s -o /dev/null -w '%{http_code}' -X POST \
  -d '{"program":"vecadd","size":0}{"junk":1}' "$base/execute")
[ "$code" = "400" ] || { echo "FAIL: trailing garbage returned $code"; exit 1; }

echo "== closed-loop load generator sustains traffic =="
"$work/loadgen" -addr "$base" -program vecadd -size 1 -workers 2 \
  -duration 0.5s -warmup 100ms | tee "$work/loadgen.json"
grep -q '"qps"' "$work/loadgen.json"
grep -q '"errors": 0' "$work/loadgen.json"
"$work/loadgen" -addr "$base" -program vecadd -size 1 -workers 2 -batch 16 \
  -duration 0.5s -warmup 100ms | tee "$work/loadgen-batch.json"
grep -q '"pointsPerSecond"' "$work/loadgen-batch.json"
grep -q '"errors": 0' "$work/loadgen-batch.json"

echo "== 405 with Allow header =="
curl -s -i -X POST "$base/stats" -o "$work/405.txt"
grep -q "^HTTP/1.1 405" "$work/405.txt" || { echo "FAIL: POST /stats not 405"; exit 1; }
grep -qi "^Allow: GET" "$work/405.txt" || { echo "FAIL: 405 without Allow header"; exit 1; }

echo "== closed loop: execute a size ABSENT from the seed DB (maxsize 1, so size 2) =="
for i in 1 2 3; do
  curl -fsS -X POST "$base/execute?program=vecadd&size=2" >/dev/null
done
curl -fsS "$base/observations" | tee "$work/obs.json"
grep -q '"enabled": true' "$work/obs.json"
grep -q '"labeled": ' "$work/obs.json"

echo "== trigger retrain: candidate must pass the no-regression gate =="
curl -fsS -X POST "$base/retrain" | tee "$work/retrain.json"
grep -q '"promoted": true' "$work/retrain.json"
grep -q '"newVersion": 2' "$work/retrain.json"

echo "== models: the promoted version is current, lineage recorded =="
curl -fsS "$base/models" | tee "$work/models.json"
grep -q '"current": 2' "$work/models.json"
grep -q '"source": "retrained"' "$work/models.json"
grep -q '"obsRecords"' "$work/models.json"

echo "== the new version serves immediately, no restart =="
curl -fsS "$base/predict?program=vecadd&size=2" | tee "$work/predict2.json"
grep -q '"modelVersion": 2' "$work/predict2.json"
grep -q '"modelSource": "retrained"' "$work/predict2.json"

echo "== rollback to v1 and back via POST /models =="
curl -fsS -X POST -d '{"rollback":1}' "$base/models" | grep -q '"current": 1'
curl -fsS "$base/predict?program=vecadd&size=2" | grep -q '"modelVersion": 1'
curl -fsS -X POST -d '{"rollback":2}' "$base/models" | grep -q '"current": 2'

echo "== observation log survives on disk =="
test -s "$work"/obslog/obs-*.jsonl || { echo "FAIL: no observation segments"; exit 1; }

echo "== graceful shutdown =="
kill -TERM "$pid"
for i in $(seq 1 100); do
  kill -0 "$pid" 2>/dev/null || break
  sleep 0.1
done
if kill -0 "$pid" 2>/dev/null; then
  echo "FAIL: serve did not exit within 10s of SIGTERM"
  exit 1
fi
wait "$pid" || { echo "FAIL: serve exited non-zero"; exit 1; }
pid=""

echo "== untrusted kernels: serve with budgets, quotas and a tiny program cache =="
"$work/serve" -addr "127.0.0.1:$port" -db "$work/db.json" -platform mc2 \
  -model knn -exec-tier vm -exec-steps 2000000 -exec-timeout 10s \
  -tenant-max-kernels 1 -cache-limit 1 &
pid=$!
for i in $(seq 1 100); do
  curl -fsS "$base/healthz" >/dev/null 2>&1 && break
  kill -0 "$pid" 2>/dev/null || { echo "FAIL: budgeted serve died during startup"; exit 1; }
  sleep 0.1
done

scale_src='kernel void scale(global float* a, global float* out, int n) { out[get_global_id(0)] = a[get_global_id(0)] * 2.0; }'
spin_src='kernel void spin(global float* out) { int i = 0; while (i < 2) { i = i - 1; } out[get_global_id(0)] = 1.0; }'

echo "== upload a kernel and execute it =="
curl -fsS -X POST -H 'Content-Type: application/json' \
  -d "{\"name\":\"scale\",\"source\":\"$scale_src\"}" "$base/kernels" | tee "$work/kernel.json"
grep -q '"name": "public/scale"' "$work/kernel.json"
curl -fsS "$base/kernels" | grep -q '"public/scale"'
curl -fsS -X POST "$base/execute?program=public/scale&size=0" | tee "$work/userexec.json"
grep -q '"program": "public/scale"' "$work/userexec.json"

echo "== malformed source is a 400 with the MiniCL position =="
code=$(curl -s -o "$work/badsrc.json" -w '%{http_code}' -X POST -H 'X-Tenant: eve' \
  -d '{"name":"broken","source":"kernel void b(global float* o) { o[0] = ; }"}' "$base/kernels")
[ "$code" = "400" ] || { echo "FAIL: bad source returned $code"; exit 1; }
grep -q '"compile"' "$work/badsrc.json"

echo "== hostile infinite-loop kernel is killed by the step budget =="
curl -fsS -X POST -H 'X-Tenant: mallory' \
  -d "{\"name\":\"spin\",\"source\":\"$spin_src\"}" "$base/kernels" >/dev/null
code=$(timeout 60 curl -s -o "$work/spin.json" -w '%{http_code}' -X POST \
  "$base/execute?program=mallory/spin&size=0")
[ "$code" = "422" ] || { echo "FAIL: hostile kernel returned $code, want 422"; exit 1; }
grep -q '"budget:steps"' "$work/spin.json"
grep -q '"limit": 2000000' "$work/spin.json"

echo "== tenant over its kernel quota gets 429 + Retry-After =="
curl -s -i -X POST -d "{\"name\":\"second\",\"source\":\"$scale_src\"}" \
  "$base/kernels" -o "$work/quota.txt"
grep -q "^HTTP/1.1 429" "$work/quota.txt" || { echo "FAIL: over-quota upload not 429"; exit 1; }
grep -qi "^Retry-After:" "$work/quota.txt" || { echo "FAIL: 429 without Retry-After"; exit 1; }

echo "== idle eviction: tiny cache evicted a program; it still serves (recompile) =="
curl -fsS -X POST "$base/execute?program=vecadd&size=0" >/dev/null
curl -fsS "$base/stats" | tee "$work/stats2.json"
grep -q '"kernelsRegistered": 2' "$work/stats2.json"
grep -q '"quotaRejections": 1' "$work/stats2.json"
grep -q '"programsEvicted": 0' "$work/stats2.json" && { echo "FAIL: no evictions with cache-limit 1"; exit 1; }
grep -q '"budgetAbortsSteps": 0' "$work/stats2.json" && { echo "FAIL: no step-budget aborts counted"; exit 1; }
curl -fsS -X POST "$base/execute?program=public/scale&size=0" | grep -q '"program": "public/scale"'

kill -TERM "$pid"
for i in $(seq 1 100); do
  kill -0 "$pid" 2>/dev/null || break
  sleep 0.1
done
wait "$pid" || { echo "FAIL: budgeted serve exited non-zero"; exit 1; }
pid=""

echo "== fleet: one process, two platforms, sharded engines, admission control =="
"$work/serve" -addr "127.0.0.1:$port" -db "$work/db.json" -platforms mc1,mc2 \
  -shards 2 -models "$work/models" -model knn -exec-tier vm \
  -admit-inflight 1 -admit-queue 0 -exec-steps 200000000 -exec-timeout 30s &
pid=$!
for i in $(seq 1 100); do
  curl -fsS "$base/healthz" >/dev/null 2>&1 && break
  kill -0 "$pid" 2>/dev/null || { echo "FAIL: fleet serve died during startup"; exit 1; }
  sleep 0.1
done
curl -fsS "$base/healthz" | tee "$work/fleet-healthz.json"
grep -q 'mc1' "$work/fleet-healthz.json"
grep -q 'mc2' "$work/fleet-healthz.json"

echo "== requests route per platform and tenant; shards appear in /stats =="
curl -fsS "$base/predict?program=vecadd&size=1&platform=mc1" | grep -q '"partition"'
curl -fsS -H 'X-Tenant: alice' "$base/predict?program=vecadd&size=1&platform=mc2" | grep -q '"partition"'
curl -fsS -H 'X-Tenant: bob' "$base/predict?program=matmul&size=0&platform=mc2" | grep -q '"partition"'
curl -fsS "$base/stats" | tee "$work/fleet-stats.json"
grep -q '"platform": "mc1"' "$work/fleet-stats.json"
grep -q '"platform": "mc2"' "$work/fleet-stats.json"
grep -q '"admitted"' "$work/fleet-stats.json"

echo "== unserved platform is a 404, not a new shard =="
code=$(curl -s -o /dev/null -w '%{http_code}' "$base/predict?program=vecadd&size=1&platform=gpu9")
[ "$code" = "404" ] || { echo "FAIL: unserved platform returned $code"; exit 1; }

echo "== binary wire protocol end to end (predict + batch) =="
"$work/loadgen" -addr "$base" -program vecadd -size 1 -wire -workers 1 \
  -duration 0.5s -warmup 100ms | tee "$work/loadgen-wire.json"
grep -q '"protocol": "wire"' "$work/loadgen-wire.json"
grep -q '"errors": 0' "$work/loadgen-wire.json"
"$work/loadgen" -addr "$base" -program vecadd -size 1 -wire -batch 16 -workers 1 \
  -duration 0.5s -warmup 100ms | tee "$work/loadgen-wire-batch.json"
grep -q '"errors": 0' "$work/loadgen-wire-batch.json"

echo "== mixed workload via -mix sustains traffic =="
"$work/loadgen" -addr "$base" -program vecadd -size 0 -workers 1 \
  -mix predict:0.6,batch:0.3,execute:0.1 -duration 0.5s -warmup 100ms |
  tee "$work/loadgen-mix.json"
grep -q '"mix": "predict:0.6,batch:0.3,execute:0.1"' "$work/loadgen-mix.json"
grep -q '"errors": 0' "$work/loadgen-mix.json"

echo "== overload sheds with 429 + Retry-After instead of queueing =="
# Deterministic shed: park a spin kernel in the default shard's single
# inflight slot (-admit-inflight 1 -admit-queue 0; the -exec-steps
# budget bounds how long it can hold it), wait until /stats shows the
# slot occupied, then probe — the probe must answer 429 + Retry-After
# immediately instead of queueing behind the running kernel.
spin_src='kernel void spin(global float* out) { int i = 0; while (i < 2) { i = i - 1; } out[get_global_id(0)] = 1.0; }'
curl -fsS -X POST -d "{\"name\":\"spin\",\"source\":\"$spin_src\"}" "$base/kernels" >/dev/null
curl -s -o "$work/spin-exec.json" -X POST "$base/execute?program=public/spin&size=0" &
spin_pid=$!
slot_busy=""
for i in $(seq 1 100); do
  curl -fsS "$base/stats" | grep -q '"queueDepth": 1' && { slot_busy=1; break; }
  sleep 0.1
done
[ -n "$slot_busy" ] || { echo "FAIL: spin kernel never occupied the inflight slot"; exit 1; }
curl -s -i -X POST "$base/execute?program=matmul&size=1" -o "$work/shed.txt"
grep -q "^HTTP/1.1 429" "$work/shed.txt" || { echo "FAIL: probe behind a busy slot was not shed with 429"; head -1 "$work/shed.txt"; exit 1; }
grep -qi "^Retry-After:" "$work/shed.txt" || { echo "FAIL: shed response without Retry-After"; exit 1; }
wait "$spin_pid" || true

# Under a closed-loop burst the report counts sheds without counting
# them as errors, and admitted traffic still completes.
"$work/loadgen" -addr "$base" -program matmul -size 1 -endpoint /execute \
  -workers 8 -duration 2s -warmup 100ms -out "$work/loadgen-shed.json"
cat "$work/loadgen-shed.json"
grep -q '"shed": 0' "$work/loadgen-shed.json" && { echo "FAIL: loadgen saw no sheds"; exit 1; }
grep -q '"errors": 0' "$work/loadgen-shed.json" || { echo "FAIL: sheds were counted as errors"; exit 1; }

kill -TERM "$pid"
for i in $(seq 1 100); do
  kill -0 "$pid" 2>/dev/null || break
  sleep 0.1
done
wait "$pid" || { echo "FAIL: fleet serve exited non-zero"; exit 1; }
pid=""
echo "PASS: serve smoke"
