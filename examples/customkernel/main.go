// Customkernel walks through what the compiler sees for a user-written
// kernel: the INSPIRE IR, the static features, the per-buffer multi-device
// plan, and the problem-size dependent runtime features at two sizes —
// the two feature classes the prediction model combines.
//
//	go run ./examples/customkernel
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/device"
	"repro/internal/exec"
	"repro/internal/features"
	"repro/internal/inspire"
)

const src = `
// Gather-scatter kernel: reads through an index buffer (GPU-hostile
// indirect access) with a branchy inner loop.
kernel void gather(global const float* src, global const int* idx,
                   global float* dst, int n, int rounds) {
	int i = get_global_id(0);
	if (i < n) {
		float acc = 0.0;
		for (int r = 0; r < rounds; r++) {
			float v = src[idx[i]];
			if (v > 0.5) {
				acc += sqrt(v);
			} else {
				acc += v * v;
			}
		}
		dst[i] = acc;
	}
}`

func main() {
	prog, err := core.CompileSource("gather", src, "gather")
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("--- INSPIRE IR ---")
	fmt.Println(inspire.PrintFunction(prog.Unit.Kernel("gather")))

	fmt.Println("--- static features (compile time) ---")
	sv := features.Static(prog.Static)
	for i, n := range sv.Names {
		fmt.Printf("  %-18s %8.3f\n", n, sv.Values[i])
	}

	fmt.Println("\n--- multi-device plan ---")
	for _, u := range prog.Plan.Usages {
		mode := "replicate"
		if u.Splittable {
			mode = "split"
		}
		fmt.Printf("  %-4s read=%-9v written=%-5v -> %s\n", u.Param.Name, u.ReadPattern, u.Written, mode)
	}

	fw, err := core.New(device.MC1())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\n--- runtime features at two problem sizes ---")
	for _, n := range []int{8192, 524288} {
		srcB, dst := exec.NewFloatBuffer(n), exec.NewFloatBuffer(n)
		idx := exec.NewIntBuffer(n)
		for i := 0; i < n; i++ {
			srcB.F[i] = float32(i%97) / 97
			idx.I[i] = int32((i * 31) % n)
		}
		spec := core.LaunchSpec{
			Args: []exec.Arg{exec.BufArg(srcB), exec.BufArg(idx), exec.BufArg(dst),
				exec.IntArg(n), exec.IntArg(8)},
			ND: exec.ND1(n),
		}
		fv, _, err := fw.Features(prog, spec)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  n=%d:\n", n)
		for i, name := range fv.Names {
			if name[0] == 'r' { // runtime features only
				fmt.Printf("    %-20s %8.3f\n", name, fv.Values[i])
			}
		}
	}
}
