// Quickstart: compile a single-device kernel, train the partitioning
// model, and run the kernel partitioned across the heterogeneous platform.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"os"

	"repro/internal/core"
	"repro/internal/device"
	"repro/internal/exec"
	"repro/internal/harness"
	"repro/internal/ml"
)

// A single-device OpenCL-style kernel: the framework turns this into a
// multi-device program automatically.
const src = `
kernel void triad(global const float* a, global const float* b, global float* c,
                  float s, int n) {
	int i = get_global_id(0);
	if (i < n) {
		c[i] = a[i] + s * b[i];
	}
}`

func main() {
	// 1. Pick a platform (mc2: 2x Xeon + 2x GTX 480) and build the framework.
	fw, err := core.New(device.MC2())
	if err != nil {
		log.Fatal(err)
	}

	// 2. Offline training: profile a few suite programs, price all 66
	//    candidate partitionings, and fit the model. (Real deployments
	//    train once on the full 23-program suite with cmd/train.)
	fmt.Fprintln(os.Stderr, "training on a benchmark subset...")
	db, err := harness.Generate(harness.GenOptions{
		Programs:   []string{"vecadd", "saxpy", "matmul", "blackscholes", "mandelbrot", "reduction"},
		MaxSizeIdx: 3,
	})
	if err != nil {
		log.Fatal(err)
	}
	if err := fw.Train(db, func() ml.Classifier { return ml.NewMLP(32, 42) }); err != nil {
		log.Fatal(err)
	}

	// 3. Deployment: compile an UNSEEN program and run it at a problem size.
	prog, err := core.CompileSource("triad", src, "triad")
	if err != nil {
		log.Fatal(err)
	}
	n := 262144
	a, b, c := exec.NewFloatBuffer(n), exec.NewFloatBuffer(n), exec.NewFloatBuffer(n)
	for i := 0; i < n; i++ {
		a.F[i] = float32(i)
		b.F[i] = 2
	}
	rep, err := fw.Run(prog, core.LaunchSpec{
		Args: []exec.Arg{exec.BufArg(a), exec.BufArg(b), exec.BufArg(c), exec.FloatArg(3), exec.IntArg(n)},
		ND:   exec.ND1(n),
	})
	if err != nil {
		log.Fatal(err)
	}

	// 4. The outputs are real (c = a + 3b), and the report compares the
	//    predicted partitioning against the default strategies.
	fmt.Printf("c[10] = %g (want %g)\n", c.F[10], a.F[10]+3*b.F[10])
	fmt.Printf("predicted partitioning (CPU/GPU1/GPU2): %s\n", rep.Partition)
	fmt.Printf("simulated makespan: %.4g ms\n", rep.Makespan*1e3)
	fmt.Printf("speedup vs CPU-only: %.2fx, vs GPU-only: %.2fx\n", rep.SpeedupVsCPU(), rep.SpeedupVsGPU())
	fmt.Printf("oracle partitioning %s at %.4g ms (efficiency %.2f)\n",
		rep.OraclePartition, rep.Oracle*1e3, rep.Oracle/rep.Makespan)
}
