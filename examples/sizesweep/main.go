// Sizesweep demonstrates the paper's central observation: the best task
// partitioning of a single program changes with the problem size. It
// sweeps an option-pricing kernel from 4K to 1M work items on both
// platforms and prints the oracle partitioning at each size.
//
//	go run ./examples/sizesweep
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/device"
	"repro/internal/exec"
	"repro/internal/runtime"
)

const src = `
kernel void price(global const float* spot, global float* out, int n) {
	int i = get_global_id(0);
	if (i < n) {
		float s = spot[i];
		float acc = 0.0;
		for (int k = 0; k < 24; k++) {
			acc += exp(-0.5 * s) * sqrt(s + (float)k);
		}
		out[i] = acc;
	}
}`

func main() {
	prog, err := core.CompileSource("price", src, "price")
	if err != nil {
		log.Fatal(err)
	}
	for _, plat := range device.Platforms() {
		rt := runtime.New(plat)
		fmt.Printf("platform %s (CPU/GPU1/GPU2):\n", plat.Name)
		for n := 4096; n <= 1<<20; n *= 4 {
			spot, out := exec.NewFloatBuffer(n), exec.NewFloatBuffer(n)
			for i := range spot.F {
				spot.F[i] = 0.5 + float32(i%100)/100
			}
			l := runtime.Launch{
				Kernel: prog.Compiled,
				Plan:   prog.Plan,
				Args:   []exec.Arg{exec.BufArg(spot), exec.BufArg(out), exec.IntArg(n)},
				ND:     exec.ND1(n),
			}
			prof, err := rt.Profile(l)
			if err != nil {
				log.Fatal(err)
			}
			best, bestTime, err := rt.Best(l, prof)
			if err != nil {
				log.Fatal(err)
			}
			cpu, _, _ := rt.Price(l, prof, rt.CPUOnly())
			gpu, _, _ := rt.Price(l, prof, rt.GPUOnly())
			fmt.Printf("  n=%8d  oracle=%-9s  %.4g ms   (CPU-only %.4g ms, GPU-only %.4g ms)\n",
				n, best, bestTime*1e3, cpu*1e3, gpu*1e3)
		}
	}
}
