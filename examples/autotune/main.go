// Autotune exhaustively measures every candidate partitioning of a
// benchmark on both platforms — the measurement loop of the paper's
// training phase — and prints the five best and the default strategies.
// It shows why exhaustive search is too expensive online (66 candidates
// per program and size) and what the learned model replaces.
//
//	go run ./examples/autotune [program]
package main

import (
	"fmt"
	"log"
	"os"
	"sort"

	"repro/internal/bench"
	"repro/internal/device"
	"repro/internal/partition"
	"repro/internal/runtime"
)

func main() {
	name := "convolution2d"
	if len(os.Args) > 1 {
		name = os.Args[1]
	}
	p, err := bench.Get(name)
	if err != nil {
		log.Fatal(err)
	}
	l, _, err := p.Build(p.DefaultSize)
	if err != nil {
		log.Fatal(err)
	}
	for _, plat := range device.Platforms() {
		rt := runtime.New(plat)
		prof, err := rt.Profile(l)
		if err != nil {
			log.Fatal(err)
		}
		type cand struct {
			part partition.Partition
			time float64
		}
		var cands []cand
		for _, part := range partition.Space(plat.NumDevices(), partition.DefaultSteps) {
			tm, _, err := rt.Price(l, prof, part)
			if err != nil {
				log.Fatal(err)
			}
			cands = append(cands, cand{part, tm})
		}
		sort.Slice(cands, func(i, j int) bool { return cands[i].time < cands[j].time })

		fmt.Printf("%s on %s, size %s: %d candidate partitionings\n",
			name, plat.Name, p.Sizes[p.DefaultSize].Label, len(cands))
		for i := 0; i < 5; i++ {
			fmt.Printf("  #%d  %-9s  %.4g ms\n", i+1, cands[i].part, cands[i].time*1e3)
		}
		cpu, _, _ := rt.Price(l, prof, rt.CPUOnly())
		gpu, _, _ := rt.Price(l, prof, rt.GPUOnly())
		fmt.Printf("  CPU-only %.4g ms (%.2fx off oracle), GPU-only %.4g ms (%.2fx off oracle)\n\n",
			cpu*1e3, cpu/cands[0].time, gpu*1e3, gpu/cands[0].time)
	}
}
